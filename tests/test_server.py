"""Tests for the served session layer (repro.server).

Covers the protocol codecs, the commit coordinator, the service core's
unit-of-work / lock / retry semantics, the socket round trip with four
concurrent clients, and the A6 acceptance property: four sessions
through group commit cost strictly less I/O per committed step than the
same work committed one unit at a time.
"""

import os

import pytest

from repro.errors import (
    DuplicateKeyError,
    LabBaseError,
    LockError,
    ProtocolError,
    SchemaError,
    ServerError,
    SessionError,
    TransactionError,
)
from repro.labbase import LabBase
from repro.server import (
    ClientRunner,
    CommitCoordinator,
    LabFlowService,
    LocalClient,
    Request,
    Response,
    ServiceClient,
    ServiceRunner,
    bootstrap_schema,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
    run_concurrent_clients,
)
from repro.storage import ObjectStoreSM, TexasSM


def _served_db(tmp_path=None, **sm_kwargs):
    path = None if tmp_path is None else os.path.join(str(tmp_path), "db.pages")
    sm = ObjectStoreSM(path=path, **sm_kwargs)
    db = LabBase(sm)
    bootstrap_schema(db)
    return db


# -- communicator ----------------------------------------------------------


def test_request_roundtrip():
    request = Request(op="record_step", session="alice", args={"involves": [3]})
    assert decode_request(encode_request(request)) == request


def test_response_roundtrip():
    response = Response(ok=False, error="nope", error_type="LockError")
    assert decode_response(encode_response(response)) == response


def test_decode_rejects_garbage():
    with pytest.raises(ProtocolError):
        decode_request(b"not json\n")
    with pytest.raises(ProtocolError):
        decode_request(b'{"session": "x"}\n')  # no op
    with pytest.raises(ProtocolError):
        decode_request(b'{"op": "q", "args": [1]}\n')  # args not an object
    with pytest.raises(ProtocolError):
        decode_response(b'{"value": 1}\n')  # no ok flag


def test_encoding_is_deterministic():
    request = Request(op="q", session="s", args={"b": 1, "a": 2})
    assert encode_request(request) == encode_request(
        Request(op="q", session="s", args={"a": 2, "b": 1})
    )


# -- commit coordinator ------------------------------------------------------


def test_group_closes_at_cap():
    db = _served_db()
    coordinator = CommitCoordinator(db, enabled=True, cap=3)
    coordinator.note_unit("a")
    coordinator.note_unit("b")
    assert not coordinator.should_close()
    coordinator.note_unit("a")
    assert coordinator.should_close()
    assert coordinator.close() == ["a", "b"]
    stats = db.storage.stats
    assert stats.group_commits == 1
    assert stats.sessions_per_group == 2
    assert stats.commits == 1
    db.storage.close()


def test_disabled_coordinator_closes_every_unit():
    db = _served_db()
    coordinator = CommitCoordinator(db, enabled=False, cap=8)
    coordinator.note_unit("solo")
    assert coordinator.should_close()
    assert coordinator.close() == ["solo"]
    assert coordinator.close() == []  # idempotent when empty
    assert db.storage.stats.group_commits == 1
    db.storage.close()


# -- service core ------------------------------------------------------------


def test_service_refuses_open_transaction():
    db = _served_db()
    db.begin()
    with pytest.raises(TransactionError):
        LabFlowService(db)
    db.abort()
    db.storage.close()


def test_session_lifecycle_and_validation():
    db = _served_db()
    service = LabFlowService(db)
    service.open_session("alice")
    with pytest.raises(LabBaseError):
        service.open_session("alice")  # duplicate
    with pytest.raises(SessionError):
        service.submit("nobody", "state_of", {"material_oid": 1})
    with pytest.raises(ProtocolError):
        service.submit("alice", "drop_table", {})
    service.close_session("alice")
    service.close_session("alice")  # idempotent
    service.shutdown()
    db.storage.close()


def test_units_execute_and_group_commits(tmp_path):
    db = _served_db(tmp_path, checkpoint_every=1)
    service = LabFlowService(db, group_commit=True, group_cap=2)
    alice = LocalClient(service, "alice")
    oid = alice.create_material("clone", "a-0", 1, state="active")
    assert service._coordinator.pending_units == 1  # not yet durable
    alice.record_step("measure", 2, [oid], {"value": 7})
    assert service._coordinator.pending_units == 0  # cap 2 closed the group
    assert alice.most_recent(oid, "value") == 7
    assert alice.state_of(oid) == "active"
    assert alice.lookup("clone", "a-0") == oid
    assert alice.history_len(oid) == 1
    assert oid in alice.in_state("active")
    stats = db.storage.stats
    assert stats.group_commits == 1
    assert stats.sessions_per_group == 1
    alice.close()
    service.shutdown()
    db.storage.close()


def test_duplicate_create_fails_without_allocating():
    db = _served_db()
    service = LabFlowService(db)
    alice = LocalClient(service, "alice")
    alice.create_material("clone", "dup", 1)
    oids_before = sorted(db.storage.oids())
    with pytest.raises(DuplicateKeyError):
        alice.create_material("clone", "dup", 2)
    assert sorted(db.storage.oids()) == oids_before  # pre-check: no orphan
    service.shutdown()
    db.storage.close()


def test_failed_unit_discards_writes_and_restores_locks():
    db = _served_db()
    service = LabFlowService(db)
    alice = LocalClient(service, "alice")
    bob = LocalClient(service, "bob")
    oid = alice.create_material("clone", "a-0", 1, state="active")
    alice.drain()  # release alice's creation group
    with pytest.raises(SchemaError):
        # invalid results attribute: validated before anything is written
        bob.record_step("measure", 2, [oid], {"no_such_attr": 1})
    assert db.cache.dirty_objects == 0
    # the failed unit's locks were restored: alice can write immediately
    alice.set_state(oid, "busy", 3)
    service.shutdown()
    db.storage.close()


def test_pending_group_blocks_then_stall_flushes():
    """Strict 2PL: a group-pending unit's X locks stall a conflicting
    session; the conflict force-closes the group (a commit_stall) and
    the retry proceeds."""
    db = _served_db()
    service = LabFlowService(db, group_commit=True, group_cap=100)
    alice = LocalClient(service, "alice")
    bob = LocalClient(service, "bob")
    # consecutive creates pack onto the same page: a conflict source
    a = alice.create_material("clone", "a-0", 1, state="active")
    b = bob.create_material("clone", "b-0", 2, state="active")
    service.drain()
    alice.set_state(a, "busy", 3)  # pending: X lock held until group close
    stalls_before = db.storage.stats.commit_stalls
    if set(db.storage.pages_of(a)) & set(db.storage.pages_of(b)):
        bob.set_state(b, "busy", 4)  # same page: must stall-flush, then win
        assert db.storage.stats.commit_stalls == stalls_before + 1
    else:  # distinct pages: contend on the same material directly
        bob.set_state(a, "busy", 4)
        assert db.storage.stats.commit_stalls == stalls_before + 1
    service.shutdown()
    db.storage.close()


def test_retry_budget_exhausts_against_foreign_lock():
    """A lock held outside any group (a foreign client on the same SM)
    cannot be flushed away: the bounded retry gives up with LockError."""
    db = _served_db()
    service = LabFlowService(db, group_commit=True, retry_backoff=0.0)
    alice = LocalClient(service, "alice")
    oid = alice.create_material("clone", "a-0", 1, state="active")
    alice.drain()
    sm = db.storage
    sm.attach_client("outsider")
    page = sm.pages_of(oid)[0]
    sm.lock_page("outsider", page, exclusive=True)
    with pytest.raises(LockError):
        alice.set_state(oid, "busy", 2)
    sm.unlock_all("outsider")
    sm.detach_client("outsider")
    alice.set_state(oid, "busy", 3)  # free again
    service.shutdown()
    sm.close()


def test_completed_units_replay_in_completion_order():
    db = _served_db()
    service = LabFlowService(db, group_commit=True, group_cap=4)
    alice = LocalClient(service, "alice")
    bob = LocalClient(service, "bob")
    a = alice.create_material("clone", "a-0", 1, state="active")
    bob.create_material("clone", "b-0", 2, state="busy")
    alice.record_step("measure", 3, [a], {"value": 5})
    alice.most_recent(a, "value")  # queries are not replayable state
    completed = service.completed_units()
    assert [op for _s, op, _a in completed] == [
        "create_material", "create_material", "record_step",
    ]
    assert completed[0][0] == "alice" and completed[1][0] == "bob"
    service.shutdown()
    db.storage.close()


def test_close_session_keeps_group_pending_units():
    """A session dying after completing units does not retract them:
    they stay in the group and become durable at the next close."""
    db = _served_db()
    service = LabFlowService(db, group_commit=True, group_cap=100)
    alice = LocalClient(service, "alice")
    oid = alice.create_material("clone", "a-0", 1, state="active")
    alice.record_step("measure", 2, [oid], {"value": 9})
    alice.close(failed=True)
    assert service._coordinator.pending_units == 2
    service.drain()
    bob = LocalClient(service, "bob")
    assert bob.most_recent(oid, "value") == 9
    assert db.storage.stats.commits == 1
    service.shutdown()
    db.storage.close()


def test_texas_serves_one_session_only():
    sm = TexasSM()
    db = LabBase(sm)
    bootstrap_schema(db)
    service = LabFlowService(db)
    solo = LocalClient(service, "solo")
    solo.create_material("clone", "only", 1)
    from repro.errors import ConcurrencyUnsupportedError
    with pytest.raises(ConcurrencyUnsupportedError):
        LocalClient(service, "second")
    service.shutdown()
    sm.close()


# -- the A6 acceptance property ---------------------------------------------


def _spread_clients(service, clients, fillers=40):
    """One material per client, each on its own page (filler-padded)."""
    tick = 0
    oids = []
    for index, client in enumerate(clients):
        tick += 1
        oids.append(
            client.create_material(
                "clone", f"{client.session}-m", tick, state="active"
            )
        )
        for filler in range(fillers):
            tick += 1
            clients[0].create_material("clone", f"fill-{index}-{filler}", tick)
    sm = service.db.storage
    pages = [sm.pages_of(oid)[0] for oid in oids]
    assert len(set(pages)) == len(pages), "expected one page per client"
    return oids, tick


def _commit_cost(tmp_path, label, group, sessions=4, rounds=6):
    # codec="pickle": the page-per-client spread (and the in-place record
    # growth it relies on) needs pickle's looser packing — the schema-aware
    # codec packs materials densely enough to share pages and relocate on
    # update, which would manufacture lock conflicts this test must not see.
    sm = ObjectStoreSM(
        path=os.path.join(str(tmp_path), f"{label}.pages"),
        checkpoint_every=1,
        codec="pickle",
    )
    db = LabBase(sm)
    bootstrap_schema(db)
    service = LabFlowService(
        db, group_commit=group, group_cap=sessions, retry_backoff=0.0
    )
    clients = [LocalClient(service, f"c{i}") for i in range(sessions)]
    oids, tick = _spread_clients(service, clients)
    service.drain()
    before = sm.stats.snapshot()
    units = 0
    for _round in range(rounds):
        for client, oid in zip(clients, oids):
            tick += 1
            client.record_step("measure", tick, [oid], {"value": "x" * 200})
            units += 1
    service.drain()
    delta = sm.stats.delta(before)
    stalls = delta["commit_stalls"]
    service.shutdown()
    sm.close()
    return delta, units, stalls


def test_group_commit_costs_less_io_per_step(tmp_path):
    """Acceptance: 4 concurrent sessions through group commit cost
    strictly fewer io_batches + meta writes per committed step than the
    same 4 sessions committing one unit at a time."""
    grouped, units_on, stalls = _commit_cost(tmp_path, "grouped", group=True)
    sequential, units_off, _ = _commit_cost(tmp_path, "sequential", group=False)
    assert units_on == units_off and units_on > 0
    assert stalls == 0  # page-per-client spread: clean full-width groups
    assert grouped["commits"] < sequential["commits"]
    assert grouped["sessions_per_group"] / grouped["group_commits"] > 1.0

    grouped_cost = (grouped["io_batches"] + grouped["meta_bytes_written"]) / units_on
    sequential_cost = (
        sequential["io_batches"] + sequential["meta_bytes_written"]
    ) / units_off
    assert grouped_cost < sequential_cost
    # both addends move the right way on their own as well
    assert grouped["meta_bytes_written"] < sequential["meta_bytes_written"]
    assert grouped["io_batches"] <= sequential["io_batches"]


# -- socket layer ------------------------------------------------------------


@pytest.fixture
def served(tmp_path):
    db = _served_db(tmp_path, checkpoint_every=1)
    service = LabFlowService(db, group_commit=True, group_cap=4)
    runner = ServiceRunner(service)
    host, port = runner.start()
    yield host, port, service, db
    runner.stop()
    db.storage.close()


def test_socket_roundtrip(served):
    host, port, _service, _db = served
    alice = ServiceClient(host, port, "alice")
    oid = alice.create_material("clone", "a-0", 1, state="active")
    alice.record_step("measure", 2, [oid], {"value": 11})
    assert alice.most_recent(oid, "value") == 11
    with pytest.raises(DuplicateKeyError):  # typed errors survive the wire
        alice.create_material("clone", "a-0", 3)
    stats = alice.stats()
    assert stats["objects_written"] > 0
    alice.drain()
    assert alice.verify_ok()
    alice.close()


def test_four_concurrent_socket_clients(served):
    host, port, service, db = served
    summary = run_concurrent_clients(host, port, clients=4, units=16)
    assert summary["creates"] == 16  # 4 clients x 4 materials
    assert summary["steps"] + summary["state_sets"] + summary["queries"] > 0
    assert summary["conflicts"] == 0  # retries absorbed every conflict
    service.drain()
    assert db.verify_storage().ok
    assert service.open_sessions() == []  # every client detached cleanly


def test_server_stop_is_clean(tmp_path):
    db = _served_db(tmp_path)
    service = LabFlowService(db)
    runner = ServiceRunner(service)
    host, port = runner.start()
    client = ServiceClient(host, port, "c")
    client.create_material("clone", "x", 1)
    runner.stop()  # drains and closes remaining sessions
    assert service.open_sessions() == []
    with pytest.raises((ServerError, OSError, ProtocolError)):
        client.create_material("clone", "y", 2)
    db.storage.close()


def test_client_runner_is_deterministic(tmp_path):
    tallies = []
    for run in range(2):
        db = _served_db()
        service = LabFlowService(db)
        client = LocalClient(service, "det")
        tallies.append(ClientRunner(client, seed=42).run(20))
        service.shutdown()
        db.storage.close()
    assert tallies[0] == tallies[1]
