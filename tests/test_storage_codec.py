"""Unit + property tests for the schema-aware record codec.

The codec is the storage stack's wire format (ISSUE 9): fixed layouts
for the three closed-schema record kinds behind one-byte tags, raw
protocol-4 pickle for everything else, and an attribute-name intern
table persisted with the meta blob.  The safety net here is the PR's
acceptance contract:

* encode/decode identity for random plain data under both codecs,
* exact StorageError translation for truncated / corrupt payloads on
  every fast-path tag,
* identical query answers on every registered backend under both
  codecs,
* per-codec bit-identical determinism of the database files, and
* a mixed-era database (written under ``pickle``, extended under
  ``labf``) that keeps answering.
"""

from __future__ import annotations

import os
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.labbase import LabBase, model
from repro.storage import ObjectStoreSM
from repro.storage.codec import (
    CODEC_NAMES,
    COMPRESS_MIN_BYTES,
    DEFAULT_CODEC,
    TAG_DEFLATE,
    TAG_HISTORY_NODE,
    TAG_MATERIAL,
    TAG_PICKLE,
    TAG_PICKLE_RAW,
    TAG_PLAIN,
    TAG_STEP,
    RecordCodec,
)
from repro.storage.registry import backends
from repro.storage.stats import StorageStats

from tests.test_readahead_equivalence import _answers, _run_workload


def _codec(mode: str) -> RecordCodec:
    return RecordCodec(mode, StorageStats())


def _step() -> dict:
    return model.make_step(
        3, 1_234_567,
        [("quality", 0.5), ("state", "active"), ("sequence", "ACGT" * 40)],
        [101, 203, 207],
    )


def _material() -> dict:
    material = model.make_material("tclone", "clone-000123", 1234)
    material["recent"] = {
        "state": [1234, 55, True, "active"],
        "quality": [1300, 60, True, 0.5],
        "length": [1300, 60, True, 160],
    }
    material["history_head"] = 77
    material["history_len"] = 19
    return material


def _history() -> dict:
    return model.make_history_node([1000 + 3 * i for i in range(32)], model.NIL)


FAST_RECORDS = {
    TAG_STEP: _step,
    TAG_MATERIAL: _material,
    TAG_HISTORY_NODE: _history,
}


# ---------------------------------------------------------------------------
# round trips
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("tag", sorted(FAST_RECORDS))
def test_fast_path_round_trip_uses_its_tag(tag):
    codec = _codec("labf")
    record = FAST_RECORDS[tag]()
    payload = codec.encode(record)
    assert payload[0] == tag
    assert codec.decode(payload) == record
    assert codec.decode(memoryview(payload)) == record
    assert codec._stats.records_fast_path == 1


def test_pickle_mode_never_takes_the_fast_path():
    codec = _codec("pickle")
    for build in FAST_RECORDS.values():
        payload = codec.encode(build())
        assert payload[0] == TAG_PICKLE_RAW  # a protocol-4 pickle
    assert codec._stats.records_fast_path == 0
    assert codec._stats.records_fallback == len(FAST_RECORDS)


def test_cross_codec_decode_is_mode_independent():
    """Either codec decodes any payload: dispatch is by tag, not mode."""
    for enc_mode in CODEC_NAMES:
        for dec_mode in CODEC_NAMES:
            encoder, decoder = _codec(enc_mode), _codec(dec_mode)
            decoder.restore_intern(encoder.intern_names())
            for build in FAST_RECORDS.values():
                record = build()
                payload = encoder.encode(record)
                decoder.restore_intern(encoder.intern_names())
                assert decoder.decode(payload) == record


def test_large_fast_payloads_deflate_and_round_trip():
    codec = _codec("labf")
    record = model.make_step(
        1, 10, [("sequence", "ACGTTGCA" * 300)], [5]
    )
    payload = codec.encode(record)
    assert payload[0] == TAG_DEFLATE
    assert len(payload) < COMPRESS_MIN_BYTES * 4
    assert codec.decode(payload) == record
    assert codec.decode(memoryview(payload)) == record


_plain = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**63), max_value=2**63)
    | st.floats(allow_nan=False)
    | st.text(max_size=40)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=5)
    | st.lists(children, max_size=5).map(tuple)
    | st.dictionaries(st.text(max_size=8), children, max_size=5),
    max_leaves=25,
)


@settings(max_examples=150, deadline=None)
@given(obj=_plain, mode=st.sampled_from(CODEC_NAMES))
def test_round_trip_fuzz_property(obj, mode):
    codec = _codec(mode)
    payload = codec.encode(obj)
    assert codec.decode(payload) == obj
    assert codec.decode(memoryview(payload)) == obj
    assert codec.decode(bytearray(payload)) == obj


@settings(max_examples=75, deadline=None)
@given(obj=_plain)
def test_encode_is_deterministic_per_codec(obj):
    for mode in CODEC_NAMES:
        assert _codec(mode).encode(obj) == _codec(mode).encode(obj)


@settings(max_examples=50, deadline=None)
@given(
    results=st.lists(
        st.tuples(
            st.text(min_size=1, max_size=12),
            st.one_of(
                st.integers(min_value=-(2**40), max_value=2**40),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=60),
                st.none(),
                st.booleans(),
            ),
        ),
        max_size=8,
    ),
    involves=st.lists(st.integers(min_value=0, max_value=2**40), max_size=6),
    valid_time=st.integers(min_value=0, max_value=2**48),
)
def test_step_fuzz_takes_fast_path_and_round_trips(results, involves, valid_time):
    codec = _codec("labf")
    record = model.make_step(2, valid_time, results, involves)
    payload = codec.encode(record)
    assert codec._stats.records_fast_path == 1
    assert codec.decode(payload) == record


# ---------------------------------------------------------------------------
# corruption: every fast-path tag must fail closed with StorageError
# ---------------------------------------------------------------------------


def _fast_payloads() -> "tuple[RecordCodec, dict[int, bytes]]":
    codec = _codec("labf")
    payloads = {
        tag: codec.encode(build()) for tag, build in FAST_RECORDS.items()
    }
    big = model.make_step(1, 10, [("sequence", "ACGTTGCA" * 300)], [5])
    payloads[TAG_DEFLATE] = codec.encode(big)
    for tag, payload in payloads.items():
        assert payload[0] == tag
    decoder = _codec("labf")
    decoder.restore_intern(codec.intern_names())
    return decoder, payloads


def test_truncated_payloads_raise_storage_error():
    decoder, payloads = _fast_payloads()
    for tag, payload in payloads.items():
        for cut in range(1, len(payload)):
            truncated = payload[:cut]
            try:
                decoded = decoder.decode(truncated)
            except StorageError:
                continue
            # A prefix that still parses may only happen if it is a
            # complete value — never silently half a record.
            raise AssertionError(
                f"tag {tag:#04x} cut at {cut} decoded to {decoded!r}"
            )


def test_trailing_garbage_raises_storage_error():
    decoder, payloads = _fast_payloads()
    for tag, payload in payloads.items():
        if tag == TAG_DEFLATE:
            continue  # trailing bytes there break the deflate stream
        with pytest.raises(StorageError, match="trailing"):
            decoder.decode(payload + b"\x00")


def test_unknown_tag_raises_storage_error():
    with pytest.raises(StorageError, match="unknown codec tag"):
        _codec("labf").decode(b"\x7f\x00\x00")


def test_empty_payload_raises_storage_error():
    with pytest.raises(StorageError, match="empty"):
        _codec("labf").decode(b"")


def test_bad_deflate_envelope_raises_storage_error():
    decoder, payloads = _fast_payloads()
    payload = payloads[TAG_DEFLATE]
    clobbered = payload[:4] + bytes(len(payload) - 4)
    with pytest.raises(StorageError, match="corrupt record payload"):
        decoder.decode(clobbered)


def test_intern_id_beyond_table_raises_storage_error():
    encoder = _codec("labf")
    payload = encoder.encode(_step())
    # A decoder that never saw the meta blob has an empty intern table.
    with pytest.raises(StorageError, match="intern"):
        _codec("labf").decode(payload)


def test_corrupt_pickle_fallback_raises_storage_error():
    for lead in (bytes((TAG_PICKLE_RAW,)), bytes((TAG_PICKLE,))):
        with pytest.raises(StorageError, match="corrupt"):
            _codec("labf").decode(lead + b"not a pickle at all")


def test_plain_tag_decodes_the_value_grammar():
    # TAG_PLAIN is decode-only compatibility: accept it, round-trip by
    # re-encoding the decoded value.
    codec = _codec("labf")
    with pytest.raises(StorageError):
        codec.decode(bytes((TAG_PLAIN,)))


# ---------------------------------------------------------------------------
# intern table lifecycle
# ---------------------------------------------------------------------------


def test_intern_table_persists_and_restores():
    encoder = _codec("labf")
    record = _step()
    payload = encoder.encode(record)
    names = encoder.intern_names()
    assert set(names) >= {"quality", "state", "sequence"}

    restored = _codec("labf")
    restored.restore_intern(names)
    assert restored.decode(payload) == record
    # Re-encoding under the restored table is bit-identical.
    assert restored.encode(record) == payload


# ---------------------------------------------------------------------------
# whole-database properties
# ---------------------------------------------------------------------------

_BACKENDS = tuple(info.name for info in backends())
_PERSISTENT = tuple(info.name for info in backends(persistent=True))


def _open(info, directory: str, codec: str):
    path = None
    if info.persistent:
        path = os.path.join(directory, "db.pages")
    return info.make(path, 64, 0, codec)


def _file_bytes(directory: str) -> dict[str, bytes]:
    contents = {}
    for name in sorted(os.listdir(directory)):
        with open(os.path.join(directory, name), "rb") as handle:
            contents[name] = handle.read()
    return contents


@settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(codes=st.lists(st.integers(0, 9999), min_size=6, max_size=30))
def test_codec_choice_preserves_answers_on_every_backend(codes):
    """The PR's acceptance property: same answers, all six backends,
    both codecs."""
    snapshots = {}
    with tempfile.TemporaryDirectory() as workdir:
        for info in backends():
            for codec in CODEC_NAMES:
                directory = os.path.join(workdir, f"{info.name}-{codec}")
                os.makedirs(directory)
                sm = _open(info, directory, codec)
                db = LabBase(sm)
                _run_workload(db, codes)
                snapshots[(info.name, codec)] = _answers(db)
                sm.close()
    reference = snapshots[(_BACKENDS[0], CODEC_NAMES[0])]
    for key, snapshot in snapshots.items():
        assert snapshot == reference, key


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(codes=st.lists(st.integers(0, 9999), min_size=6, max_size=30))
def test_each_codec_is_bit_identical_across_runs(codes):
    """Determinism floor: same workload, same codec => same files."""
    with tempfile.TemporaryDirectory() as workdir:
        for codec in CODEC_NAMES:
            images = []
            for attempt in range(2):
                directory = os.path.join(workdir, f"{codec}-{attempt}")
                os.makedirs(directory)
                sm = ObjectStoreSM(
                    path=os.path.join(directory, "db.pages"),
                    buffer_pages=64,
                    codec=codec,
                )
                db = LabBase(sm)
                _run_workload(db, codes)
                sm.close()
                images.append(_file_bytes(directory))
            assert images[0] == images[1], codec


def test_mixed_codec_era_database_reopens_and_extends(tmp_path):
    """A pickle-era database keeps working when reopened under labf."""
    path = os.path.join(tmp_path, "db.pages")
    codes = list(range(0, 40, 3))

    sm = ObjectStoreSM(path=path, buffer_pages=64, codec="pickle")
    db = LabBase(sm)
    _run_workload(db, codes)
    before = _answers(db)
    assert sm.stats.records_fast_path == 0
    sm.close()

    # Reopen under labf: old pickle records decode by tag, new writes
    # take the fast path, and the intern table starts filling in.
    sm = ObjectStoreSM(path=path, buffer_pages=64, codec="labf")
    db = LabBase(sm)
    assert _answers(db) == before
    oid = db.create_material("clone", "era-2", 100, state="active")
    for t in range(101, 110):
        db.record_step("assay", t, [oid], {"q": t, "r": "mixed"})
    db.set_state(oid, "done", 110)
    extended = _answers(db)
    assert sm.stats.records_fast_path > 0
    assert db.verify_storage().ok
    sm.close()

    # And once more under labf: the intern table round-trips the meta
    # blob, so the mixed-era records still answer identically.
    sm = ObjectStoreSM(path=path, buffer_pages=64, codec="labf")
    db = LabBase(sm)
    assert _answers(db) == extended
    sm.close()


def test_default_codec_is_labf():
    assert DEFAULT_CODEC == "labf"
    with tempfile.TemporaryDirectory() as workdir:
        sm = ObjectStoreSM(path=os.path.join(workdir, "db.pages"))
        assert sm.codec_name == "labf"
        sm.close()


# ---------------------------------------------------------------------------
# the commit-batched most-recent index
# ---------------------------------------------------------------------------


def _recent_snapshot(db: LabBase, oid: int) -> dict:
    return {
        "attrs": db.current_attributes(oid),
        "state": db.state_of(oid),
        "history_len": db.history_length(oid),
    }


def test_batched_index_matches_autocommit_installs(tmp_path):
    """One transaction's batched install == the same steps autocommitted."""
    snapshots = {}
    for label, transactional in (("txn", True), ("auto", False)):
        sm = ObjectStoreSM(
            path=os.path.join(tmp_path, f"{label}.pages"), buffer_pages=64
        )
        db = LabBase(sm)
        db.define_material_class("clone")
        db.define_step_class("assay", ["q", "r"], ["clone"])
        oid = db.create_material("clone", "c-1", 1, state="active")
        if transactional:
            db.begin()
        for t in range(2, 12):
            db.record_step("assay", t, [oid], {"q": t, "r": f"v{t}"})
        if transactional:
            db.commit()
        snapshots[label] = _recent_snapshot(db, oid)
        sm.close()
    assert snapshots["txn"] == snapshots["auto"]


def test_batched_index_discarded_on_abort(tmp_path):
    sm = ObjectStoreSM(path=os.path.join(tmp_path, "db.pages"), buffer_pages=64)
    db = LabBase(sm)
    db.define_material_class("clone")
    db.define_step_class("assay", ["q"], ["clone"])
    oid = db.create_material("clone", "c-1", 1, state="active")
    db.record_step("assay", 2, [oid], {"q": 10})
    before = _recent_snapshot(db, oid)
    db.begin()
    db.record_step("assay", 3, [oid], {"q": 99})
    db.abort()
    assert _recent_snapshot(db, oid) == before
    sm.close()
