"""Second-round integration tests: traces x servers, DSL x benchmark,
sessions x workload, DOT rendering."""

import pytest

from repro.benchmark import (
    TINY,
    LabFlowWorkload,
    Trace,
    TracingServer,
    all_servers,
    replay,
)
from repro.labbase import LabBase, SessionManager
from repro.storage import ObjectStoreSM, OStoreMM
from repro.util.rng import DeterministicRng
from repro.workflow import WorkflowEngine, build_genome_workflow, load_workflow
from repro.workflow.dsl import render_workflow
from repro.workflow.genome import build_genome_spec


def test_one_trace_replays_onto_all_five_servers(tmp_path):
    """The portable same-stream guarantee, across every server version."""
    source = LabBase(OStoreMM())
    traced = TracingServer(source)
    LabFlowWorkload(traced, TINY.with_(clones_per_interval=3)).run_all()
    reference = None
    for spec in all_servers():
        sm = spec.make(TINY.with_(db_dir=str(tmp_path)))
        db = LabBase(sm)
        replay(traced.trace, db)
        census = db.sets.state_census()
        counts = dict(db.catalog.material_counts)
        if reference is None:
            reference = (census, counts)
        else:
            assert (census, counts) == reference, spec.name
        sm.close()


def test_benchmark_runs_on_a_dsl_defined_workflow():
    """The workload generator is not genome-specific: the engine can
    pump any valid workflow loaded from text."""
    graph = load_workflow(render_workflow(build_genome_spec()))
    db = LabBase(OStoreMM())
    engine = WorkflowEngine(db, graph, DeterministicRng(7))
    engine.install_schema()
    for _ in range(4):
        engine.create_material("clone")
    executed = engine.pump(1_000_000)
    assert executed > 30
    assert len(db.in_state("clone_done")) == 4
    # and it behaves identically to the Python-defined graph
    reference_db = LabBase(OStoreMM())
    reference = WorkflowEngine(
        reference_db, load_workflow(render_workflow(build_genome_spec())),
        DeterministicRng(7),
    )
    reference.install_schema()
    for _ in range(4):
        reference.create_material("clone")
    reference.pump(1_000_000)
    assert reference.counters.per_step == engine.counters.per_step


def test_sessions_over_a_benchmark_database(tmp_path):
    sm = ObjectStoreSM(path=str(tmp_path / "lab.db"))
    db = LabBase(sm)
    workload = LabFlowWorkload(db, TINY.with_(clones_per_interval=4))
    workload.run_all()
    manager = SessionManager(db)
    with manager.open_session("analyst") as analyst:
        key, oid = workload.registry.by_class["clone"][0]
        analyst.lock_material(oid)
        value = db.material(oid)["key"]
        assert value == key
    sm.close()


def test_dot_rendering_of_genome_graph():
    dot = build_genome_workflow().to_dot()
    assert dot.startswith("digraph")
    assert '"waiting_for_sequencing"' in dot
    assert "style=dashed" in dot          # the failure edges
    assert "doublecircle" in dot          # terminal states
    assert dot.count("->") >= 11          # 9 success + 2 failure edges


def test_index_off_database_replays_identically_to_index_on():
    """Traces are index-agnostic: the ablation backends agree."""
    source = LabBase(OStoreMM())
    traced = TracingServer(source)
    LabFlowWorkload(traced, TINY.with_(clones_per_interval=2)).run_all()

    indexed = LabBase(OStoreMM(), use_most_recent_index=True)
    scanning = LabBase(OStoreMM(), use_most_recent_index=False)
    replay(traced.trace, indexed)
    replay(traced.trace, scanning)
    for oid, record in indexed.iter_materials():
        other = scanning.lookup(record["class_name"], record["key"])
        assert indexed.current_attributes(oid) == \
            scanning.current_attributes(other)


def test_chronicle_agrees_with_engine_counters_after_replay():
    from repro.labbase import Chronicle

    source = LabBase(OStoreMM())
    traced = TracingServer(source)
    workload = LabFlowWorkload(traced, TINY.with_(clones_per_interval=3))
    workload.run_all()

    target = LabBase(OStoreMM())
    replay(traced.trace, target)
    profiles = {p.class_name: p.executions
                for p in Chronicle(target).step_profiles()}
    assert profiles == dict(workload.engine.counters.per_step)
