"""Tests for the executable shape checks."""

import pytest

from repro.benchmark import TINY, run_comparison
from repro.benchmark.analysis import check_shapes, failed_checks, render_checks


@pytest.fixture(scope="module")
def comparison(tmp_path_factory):
    config = TINY.with_(
        db_dir=str(tmp_path_factory.mktemp("shape_dbs")),
        clones_per_interval=8,
    )
    return run_comparison(config)


def test_every_claim_holds_on_a_real_run(comparison):
    checks = check_shapes(comparison)
    assert checks, "no checks ran"
    failures = failed_checks(checks)
    assert not failures, render_checks(failures)


def test_claim_coverage(comparison):
    """All seven claim families are evaluated."""
    ids = {check.claim_id for check in check_shapes(comparison)}
    assert ids == {"S1", "S2", "S3", "S4", "S5", "S6", "S7"}


def test_render_is_readable(comparison):
    text = render_checks(check_shapes(comparison))
    assert "[PASS]" in text
    assert "S2" in text and "1.4" in text or "x" in text


def test_subset_comparison_skips_inapplicable_claims(tmp_path):
    config = TINY.with_(db_dir=str(tmp_path))
    partial = run_comparison(config, servers=("OStore-mm", "Texas-mm"))
    checks = check_shapes(partial)
    ids = {check.claim_id for check in checks}
    assert "S2" not in ids  # no persistent versions to compare
    assert "S4" in ids
    assert not failed_checks(checks)
