"""Tests pinning the genome-mapping workflow (paper Appendices A/B)."""

from repro.labbase import LabBase
from repro.storage import OStoreMM
from repro.util.rng import DeterministicRng
from repro.workflow import WorkflowEngine
from repro.workflow.genome import (
    MORE_TCLONES_PROBABILITY,
    SEQUENCING_FAILURE_PROBABILITY,
    build_genome_spec,
    build_genome_workflow,
)


def test_attested_vocabulary_present():
    """Names quoted in the paper's text must exist verbatim."""
    spec = build_genome_spec()
    step_names = {step.class_name for step in spec.steps}
    assert {"associate_tclone", "determine_sequence", "assemble_sequence"} <= step_names
    material_names = {material.class_name for material in spec.materials}
    assert {"clone", "tclone"} <= material_names
    states = {t.from_state for t in spec.transitions} | {
        t.to_state for t in spec.transitions
    }
    assert "waiting_for_sequencing" in states
    assert "waiting_for_incorporation" in states
    tests = {t.test for t in spec.transitions if t.test}
    assert "test:sequencing_ok" in tests


def test_graph_validates_and_has_requeue_cycle():
    graph = build_genome_workflow()
    assert graph.has_cycles()  # the sequencing re-queue edge
    assert graph.longest_acyclic_path() >= 4


def test_blast_step_produces_hit_list_attribute():
    spec = build_genome_spec()
    blast = spec.step("blast_search")
    assert blast.attribute("hits").kind.value == "hit_list"


def test_fan_out_statistics_match_design():
    """Mean tclones per clone ~= 1/(1-p); sequencing failures ~= p."""
    db = LabBase(OStoreMM())
    engine = WorkflowEngine(db, build_genome_workflow(), DeterministicRng(123))
    engine.install_schema()
    clones = 60
    for _ in range(clones):
        engine.create_material("clone")
    engine.pump(1_000_000)  # run dry

    tclones = db.count_materials("tclone")
    mean_fanout = tclones / clones
    expected = 1.0 / (1.0 - MORE_TCLONES_PROBABILITY)
    assert expected * 0.6 < mean_fanout < expected * 1.6, mean_fanout

    sequencing_runs = db.count_steps("determine_sequence")
    failures = engine.counters.failures - (
        db.count_steps("associate_tclone") - clones
    )  # subtract fan-out "failures" (they re-queue the clone by design)
    failure_rate = failures / sequencing_runs
    assert failure_rate < SEQUENCING_FAILURE_PROBABILITY * 3


def test_every_clone_completes_and_carries_final_attributes():
    db = LabBase(OStoreMM())
    engine = WorkflowEngine(db, build_genome_workflow(), DeterministicRng(5))
    engine.install_schema()
    oids = [engine.create_material("clone") for _ in range(5)]
    engine.pump(1_000_000)
    for oid in oids:
        assert db.state_of(oid) == "clone_done"
        attrs = db.current_attributes(oid)
        assert "contig" in attrs      # assemble_sequence ran
        assert "hits" in attrs        # blast_search ran
        assert "map_position" in attrs  # incorporate ran


def test_gels_all_reach_terminal_state():
    db = LabBase(OStoreMM())
    engine = WorkflowEngine(db, build_genome_workflow(), DeterministicRng(5))
    engine.install_schema()
    for _ in range(4):
        engine.create_material("clone")
    engine.pump(1_000_000)
    assert db.count_materials("gel") == len(db.in_state("gel_done"))
    assert db.count_materials("gel") >= db.count_materials("tclone")
