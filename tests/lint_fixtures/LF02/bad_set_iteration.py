# module: repro.benchmark.badorder
"""Violation: iterating sets in hash order leaks nondeterminism."""


def flush_order(dirty):
    pages = set(dirty)
    for page_id in pages:  # hash order reaches the write schedule
        yield page_id


def labels(ops):
    tags: set = set()
    tags.update(ops)
    return [op.upper() for op in tags]
