# module: repro.benchmark.goodorder
"""Clean: sets are consumed through order-insensitive or sorting wrappers."""


def schedule(page_ids):
    pending = set(page_ids)
    for page_id in sorted(pending):  # canonical order
        yield page_id


def census(states: set) -> int:
    return len(states)


def subset(ops):
    collected: set = set()
    collected.update(ops)
    # set -> set keeps no order, so a set comprehension is fine
    return {op for op in collected if op.startswith("Q")}
