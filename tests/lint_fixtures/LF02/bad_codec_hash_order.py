# module: repro.storage.codec
"""Violation: hash-order iteration inside the record codec.

The codec writes the bytes the crash matrix replays and the
bit-identity properties compare; interning attribute names in set
order would make two identical runs produce different intern ids and
therefore different files.
"""


def intern_all(names):
    pending = set(names)
    table = {}
    for name in pending:  # hash order decides intern ids
        table[name] = len(table)
    return table
