# module: repro.storage.disk
"""Violation: wall-clock time and global random on the crash path."""

import random
import time


def stamp():
    return time.time()


def jitter(pages):
    random.shuffle(pages)
    return pages
