# module: repro.storage.badlockleak
"""Violation: a conflict partway through leaks every lock already taken."""


class Session:
    def __init__(self, locks):
        self._locks = locks

    def lock_all(self, client, oids):
        for oid in sorted(oids):
            self._locks.lock_object(client, oid)
