# module: repro.storage.badlockorder
"""Violation: acquisition order follows the caller's argument order."""


class Session:
    def __init__(self, locks):
        self._locks = locks

    def lock_all(self, client, oids):
        taken = []
        try:
            for oid in oids:  # two clients, opposite orders -> deadlock
                self._locks.lock_object(client, oid)
                taken.append(oid)
        finally:
            if len(taken) != len(oids):
                self.release_all(client, taken)

    def release_all(self, client, oids):
        for oid in oids:
            self._locks.unlock(client, oid)
