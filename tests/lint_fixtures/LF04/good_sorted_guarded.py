# module: repro.storage.goodlocks
"""Clean: canonical acquisition order plus a release guard."""


class LockError(Exception):
    pass


class Session:
    def __init__(self, locks):
        self._locks = locks

    def lock_all(self, client, oids):
        newly = []
        try:
            for oid in sorted(set(oids)):  # canonical oid order
                self._locks.lock_object(client, oid)
                newly.append(oid)
        except LockError:
            self.release_all(client, newly)
            raise

    def release_all(self, client, oids):
        for oid in oids:
            self._locks.unlock(client, oid)
