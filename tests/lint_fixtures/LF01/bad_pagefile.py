# module: repro.storage.badpagefile
"""Violation: constructs a page file outside the disk layer."""

from repro.storage.disk import PageFile


def sneaky_open(path):
    return PageFile(path)


def sneaky_faulty(path, injector):
    from repro.storage.faultinject import FaultyPageFile

    return FaultyPageFile(path, injector)
