# module: repro.storage.goodio
"""Clean: all I/O goes through the pool; read-mode open is fine."""


class Exporter:
    def __init__(self, pool):
        self._pool = pool

    def load(self, page_id):
        return self._pool.fetch(page_id)

    def read_config(self, path):
        with open(path) as handle:  # read mode: not a write point
            return handle.read()

    def read_explicit(self, path):
        with open(path, "r", encoding="utf-8") as handle:
            return handle.read()
