# module: repro.storage.badoswrite
"""Violation: os-level I/O and write-mode open bypass the buffer pool."""

import os


def raw_write(fd, data):
    os.write(fd, data)


def side_channel(path, payload):
    with open(path, "wb") as handle:
        handle.write(payload)


def rename_swap(a, b):
    os.replace(a, b)
