# module: repro.obs.badunrendered
"""A gauge registered but missing from its declared render path."""

from repro.obs.registry import MetricSpec

GHOST = MetricSpec(
    name="ghost_gauge",
    description="computed but never shown to anyone",
    render="render_sample_table",
    baseline="A5",
    numerator="buffer_hits",
    denominator=("major_faults",),
)
