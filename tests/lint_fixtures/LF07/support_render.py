# module: repro.obs.render
"""Fixture render module: one function hosts every well-placed gauge."""


def render_sample_table(samples):
    columns = (
        ("hit_ratio", 10),
        ("group_width", 11),
        ("dup_gauge", 9),
        ("raw_gauge", 9),
    )
    return [name for name, _width in columns for _sample in samples]


def render_phase_histograms(histograms):
    return sorted(histograms)
