# module: repro.obs.badcounter
"""A gauge computed from a counter StorageStats never declared."""

from repro.obs.registry import MetricSpec

RAW = MetricSpec(
    name="raw_gauge",
    description="reads a phantom counter",
    render="render_sample_table",
    baseline="A6",
    numerator="phantom_reads",
    denominator=("group_commits",),
)
