# module: repro.storage.stats
"""Fixture stand-in for the StorageStats declaration LF07 checks against."""

from dataclasses import dataclass


@dataclass
class StorageStats:
    buffer_hits: int = 0
    major_faults: int = 0
    group_commits: int = 0
    sessions_per_group: int = 0
