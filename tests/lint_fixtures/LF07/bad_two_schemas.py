# module: repro.obs.badtwoschemas
"""A gauge recorded under two baseline schemas at once."""

from repro.obs.registry import MetricSpec

DUP = MetricSpec(
    name="dup_gauge",
    description="owned by nobody because it is owned by two schemas",
    render="render_sample_table",
    baseline="A6",
    numerator="group_commits",
    denominator=("group_commits",),
)
