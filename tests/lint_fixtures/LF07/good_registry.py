# module: repro.obs.goodregistry
"""Two well-formed registrations: rendered once, one schema each."""

from repro.obs.registry import MetricSpec

DERIVED_METRICS = (
    MetricSpec(
        name="hit_ratio",
        description="buffer-pool hits over page accesses",
        render="render_sample_table",
        baseline="A5",
        numerator="buffer_hits",
        denominator=("buffer_hits", "major_faults"),
        default=1.0,
    ),
    MetricSpec(
        name="group_width",
        description="mean session-units fused per group commit",
        render="render_sample_table",
        baseline="A6",
        numerator="sessions_per_group",
        denominator=("group_commits",),
    ),
)
