# module: repro.obs.baseline
"""Fixture baseline module: the schema dict LF07 cross-checks."""

BASELINE_SCHEMAS = {
    "A5": ("hit_ratio", "ghost_gauge"),
    "A6": ("group_width", "dup_gauge", "raw_gauge"),
    "A4": ("dup_gauge",),
}
