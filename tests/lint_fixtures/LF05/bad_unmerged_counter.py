# module: repro.storage.badunmerged
"""Violation: the counter exists but the aggregator and report drop it."""


class Engine:
    def __init__(self, stats):
        self._stats = stats

    def work(self):
        self._stats.lost_counter += 1
