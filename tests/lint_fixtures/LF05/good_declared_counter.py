# module: repro.storage.goodcount
"""Clean: the incremented counter is declared, merged and rendered."""


class Engine:
    def __init__(self, stats):
        self.stats = stats

    def work(self):
        self.stats.ops_done += 1
