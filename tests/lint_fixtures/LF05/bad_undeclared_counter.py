# module: repro.storage.badundeclared
"""Violation: increments a counter StorageStats never declares."""


class Engine:
    def __init__(self, stats):
        self.stats = stats

    def work(self):
        self.stats.phantom_ops += 1
