# module: repro.benchmark.report
"""Support: the renderer names the counters it shows."""

COUNTERS = ("ops_done",)


def render_stats(stats):
    return "\n".join(f"{name} {getattr(stats, name)}" for name in COUNTERS)
