# module: repro.storage.stats
"""Support: a hand-written aggregator that names each merged field."""

from dataclasses import dataclass


@dataclass
class StorageStats:
    ops_done: int = 0
    lost_counter: int = 0  # declared but never merged nor rendered

    def merge(self, other):
        self.ops_done += other.ops_done
