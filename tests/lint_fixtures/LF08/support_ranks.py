# module: repro.obs.tracing
"""Fixture ordering table: the ground truth LF08 decodes.

Poses as ``repro.obs.tracing`` so the fixture project has exactly one
``LOCK_RANKS``/``LOCK_SITES`` pair, covering the lock attributes the
good/bad fixture classes declare.
"""

LOCK_RANKS: dict[str, int] = {
    "outer.gate": 0,
    "inner.state": 10,
    "inv.first": 20,
    "inv.second": 30,
}

LOCK_SITES: dict[str, str] = {
    "outer.gate": "Pipeline._gate",
    "inner.state": "Pipeline._state_lock",
    "inv.first": "Inverter._first",
    "inv.second": "Inverter._second",
}
