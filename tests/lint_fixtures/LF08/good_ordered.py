# module: repro.server.fixture_ordered
"""Clean under LF08: registered locks, rank-ordered nesting, sorted
multi-acquisition, rollback that restores upgrades."""

import threading


class Pipeline:
    def __init__(self, storage):
        self._gate = threading.RLock()
        self._state_lock = threading.Lock()
        self._storage = storage
        self._jobs = []

    def submit(self, client, oids):
        with self._gate:
            self._lock_sorted(client, oids)
            with self._state_lock:
                self._jobs.append(client)

    def _lock_sorted(self, client, oids):
        taken = []
        try:
            for oid in sorted(set(oids)):
                self._storage.lock_page(client, oid, exclusive=True)
                taken.append(oid)
        except Exception:
            for oid in taken:
                self._storage.unlock_page(client, oid)
            for oid in self._upgraded(client):
                self._storage.downgrade_page(client, oid)
            raise

    def _upgraded(self, client):
        return []
