# module: repro.server.fixture_release
"""Flagged by LF08: a page-lock release on the happy path, before unit
end — breaks strict 2PL (updates must hold locks until the group
closes)."""


class EagerReleaser:
    def __init__(self, storage):
        self._storage = storage

    def run_unit(self, client, oids):
        for oid in sorted(oids):
            self._storage.lock_page(client, oid, exclusive=True)
        value = self._apply(client)
        for oid in sorted(oids):
            self._storage.unlock_page(client, oid)  # before commit!
        return value

    def _apply(self, client):
        return client
