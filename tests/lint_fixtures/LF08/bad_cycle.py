# module: repro.labbase.sessions_fixture
"""Flagged by LF08: two functions demonstrate opposite nesting orders,
closing a cycle in the lock-acquisition graph (potential deadlock)."""

import threading


class Cycler:
    def __init__(self):
        self._left = threading.RLock()
        self._right = threading.RLock()

    def forward(self, job):
        with self._left:
            with self._right:
                return job

    def backward(self, job):
        with self._right:
            with self._left:
                return job
