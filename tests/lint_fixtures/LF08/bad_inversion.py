# module: repro.server.fixture_inversion
"""Flagged by LF08: acquires a lower-ranked lock while holding a
higher-ranked one — the deliberate reordering the sanitizer must see."""

import threading


class Inverter:
    def __init__(self):
        self._first = threading.Lock()
        self._second = threading.Lock()

    def forward(self, job):
        with self._second:
            with self._first:  # rank 20 acquired under rank 30
                return job
