# module: repro.server.fixture_unsorted
"""Flagged by LF08: the loop acquires locks through a helper while
iterating a set — hash order, so two sessions rank their acquisitions
differently (the dataflow generalization of LF04)."""


class UnsortedAcquirer:
    def __init__(self, storage):
        self._storage = storage

    def lock_batch(self, client, oids):
        pending = set(oids)
        taken = []
        try:
            for oid in pending:
                self._take(client, oid)
                taken.append(oid)
        except Exception:
            for oid in taken:
                self._storage.unlock_page(client, oid)
            for oid in taken:
                self._storage.downgrade_page(client, oid)
            raise
        return taken

    def _take(self, client, oid):
        self._storage.lock_page(client, oid, exclusive=True)
