# module: repro.server.fixture_unregistered
"""Flagged by LF08: a lock attribute in the served core that has no
entry in the LOCK_SITES/LOCK_RANKS ordering table."""

import threading


class Rogue:
    def __init__(self):
        self._hidden = threading.Lock()

    def touch(self, value):
        with self._hidden:
            return value
