# module: repro.server.fixture_rollback
"""Flagged by LF08: a rollback handler that releases newly taken page
locks but never downgrades upgrades — PR 6's lock-upgrade leak."""


class LeakyRollback:
    def __init__(self, storage):
        self._storage = storage

    def lock_all(self, client, oids):
        taken = []
        try:
            for oid in sorted(oids):
                self._storage.lock_page(client, oid, exclusive=True)
                taken.append(oid)
        except Exception:
            for oid in taken:
                self._storage.unlock_page(client, oid)
            raise  # upgraded pages stay EXCLUSIVE: the leak
        return taken
