# module: repro.server.fixture_guarded
"""Clean under LF09: every access to the worker-shared containers is
dominated by the same lock."""

import threading


class GuardedPool:
    def __init__(self, jobs):
        self._lock = threading.Lock()
        self._jobs = list(jobs)
        self._results = []

    def run(self, count):
        threads = [
            threading.Thread(target=self._worker) for _ in range(count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with self._lock:
            return list(self._results)

    def _worker(self):
        while True:
            with self._lock:
                if not self._jobs:
                    return
                job = self._jobs.pop()
            with self._lock:
                self._results.append(job)
