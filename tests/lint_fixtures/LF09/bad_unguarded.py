# module: repro.server.fixture_unguarded
"""Flagged by LF09: worker threads append to a shared list with no lock
at all."""

import threading


class UnguardedPool:
    def __init__(self, jobs):
        self._jobs = list(jobs)
        self._results = []

    def run(self, count):
        threads = [
            threading.Thread(target=self._worker) for _ in range(count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return list(self._results)

    def _worker(self):
        while self._jobs:
            self._results.append(self._jobs.pop())
