# module: repro.server.fixture_mixed
"""Flagged by LF09: every access holds *a* lock, but not the same one —
two threads can still interleave on the shared counter map."""

import threading


class MixedLocks:
    def __init__(self):
        self._read_lock = threading.Lock()
        self._write_lock = threading.Lock()
        self._counts = {}

    def run(self, count):
        threads = [
            threading.Thread(target=self._worker) for _ in range(count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with self._read_lock:
            return dict(self._counts)

    def _worker(self):
        with self._write_lock:
            self._counts["units"] = self._counts.get("units", 0) + 1
