# module: repro.server.fixture_global
"""Flagged by LF09: module-level mutable state written by worker
threads and read by the launcher, with no lock anywhere."""

import threading

EVENTS = []


def drain(count):
    threads = [
        threading.Thread(target=_collect) for _ in range(count)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return list(EVENTS)


def _collect():
    EVENTS.append("unit")
