# module: repro.storage.badreach
"""Violation: reads another module's private state directly."""


def count_objects(sm):
    return len(sm._directory)


def segment_names(sm):
    return [segment.name for segment in sm._segments.values()]
