# module: repro.storage.badchain
"""Violation: chained reach-ins through a foreign object graph."""


class Inspector:
    def __init__(self, manager):
        self.manager = manager

    def raw_page(self, page_id):
        return self.manager._pool._frames[page_id]

    def disk_epoch(self):
        return self.manager._disk.epoch
