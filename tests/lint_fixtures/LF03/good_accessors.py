# module: repro.storage.goodaccess
"""Clean: own privates, same-module friends, and public accessors only."""


class Pool:
    def __init__(self):
        self._frames = {}

    def fetch(self, page_id):
        return self._frames.get(page_id)


def pool_len(pool: Pool) -> int:
    # same-module friend access: _frames is defined in this module
    return len(pool._frames)


def summarize(sm):
    return [segment.name for segment in sm.segments()]


def clone(point):
    return point._replace(x=0)  # namedtuple API, not privacy
