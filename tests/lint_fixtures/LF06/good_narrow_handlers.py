# module: repro.storage.goodexcept
"""Clean: concrete types, bare re-raise, or a justified suppression."""


class StorageError(Exception):
    pass


def read(store, oid):
    try:
        return store.read(oid)
    except StorageError:
        return None


def guarded(store):
    try:
        return store.scan()
    except Exception:
        store.close()
        raise  # bare re-raise preserves the original exception


def translate(blob):
    try:
        return decode(blob)
    # decoding raises arbitrary error types for corrupt input
    except Exception as exc:  # lint: ignore[LF06]
        raise StorageError(str(exc)) from exc


def decode(blob):
    return blob
