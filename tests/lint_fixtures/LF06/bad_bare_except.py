# module: repro.storage.badbare
"""Violation: a bare except swallows InjectedCrashError."""


def tidy(store):
    try:
        store.flush()
    except:
        pass
