# module: repro.storage.badbroad
"""Violation: unjustified broad handlers, alone and inside a tuple."""


class WrapError(Exception):
    pass


def wrap(fn):
    try:
        return fn()
    except Exception as exc:  # translation without a justification
        raise WrapError(str(exc)) from exc


def tolerant(fn):
    try:
        return fn()
    except (ValueError, Exception):
        return None
