"""Tests for as-of (time-travel) queries over the event history."""

import pytest

from hypothesis import given, settings, strategies as st

from repro.errors import UnknownAttributeError
from repro.labbase import LabBase
from repro.query import Program
from repro.storage import OStoreMM


@pytest.fixture
def db():
    database = LabBase(OStoreMM())
    database.define_material_class("clone")
    database.define_step_class("s", ["a", "b"], ["clone"])
    return database


def test_value_as_of_picks_latest_at_or_before(db):
    oid = db.create_material("clone", "c", 0)
    db.record_step("s", 10, [oid], {"a": "ten"})
    db.record_step("s", 20, [oid], {"a": "twenty"})
    db.record_step("s", 30, [oid], {"a": "thirty"})
    assert db.value_as_of(oid, "a", 10) == "ten"
    assert db.value_as_of(oid, "a", 15) == "ten"
    assert db.value_as_of(oid, "a", 20) == "twenty"
    assert db.value_as_of(oid, "a", 99) == "thirty"


def test_value_as_of_before_first_event_raises(db):
    oid = db.create_material("clone", "c", 0)
    db.record_step("s", 10, [oid], {"a": 1})
    with pytest.raises(UnknownAttributeError):
        db.value_as_of(oid, "a", 9)


def test_value_as_of_ignores_out_of_order_entry(db):
    """A late-entered old result must be visible at its valid time."""
    oid = db.create_material("clone", "c", 0)
    db.record_step("s", 30, [oid], {"a": "new"})
    db.record_step("s", 10, [oid], {"a": "old"})  # entered later!
    assert db.value_as_of(oid, "a", 15) == "old"
    assert db.value_as_of(oid, "a", 30) == "new"
    assert db.most_recent(oid, "a") == "new"


def test_attributes_as_of_view(db):
    oid = db.create_material("clone", "c", 0)
    db.record_step("s", 10, [oid], {"a": 1})
    db.record_step("s", 20, [oid], {"b": 2})
    db.record_step("s", 30, [oid], {"a": 3})
    assert db.attributes_as_of(oid, 5) == {}
    assert db.attributes_as_of(oid, 10) == {"a": 1}
    assert db.attributes_as_of(oid, 25) == {"a": 1, "b": 2}
    assert db.attributes_as_of(oid, 35) == {"a": 3, "b": 2}
    # "now" agrees with the current view
    assert db.attributes_as_of(oid, 10**9) == db.current_attributes(oid)


def test_value_as_of_in_dql(db):
    oid = db.create_material("clone", "c", 0)
    db.record_step("s", 10, [oid], {"a": 1})
    db.record_step("s", 20, [oid], {"a": 2})
    program = Program(db=db)
    assert program.first(f"value_as_of({oid}, a, 15, V).")["V"] == 1
    assert program.first(f"value_as_of({oid}, a, 25, V).")["V"] == 2
    assert not program.ask(f"value_as_of({oid}, a, 5, V).")
    # check mode
    assert program.ask(f"value_as_of({oid}, a, 15, 1).")
    assert not program.ask(f"value_as_of({oid}, a, 15, 2).")


@settings(max_examples=50, deadline=None)
@given(
    stream=st.lists(
        st.tuples(st.integers(0, 40), st.integers(0, 99)),
        min_size=1, max_size=20,
    ),
    probe=st.integers(0, 45),
)
def test_as_of_matches_reference_semantics(stream, probe):
    """as-of(T) == latest value with valid time <= T, ties to later insert."""
    db = LabBase(OStoreMM())
    db.define_material_class("m")
    db.define_step_class("s", ["a"], ["m"])
    oid = db.create_material("m", "k", 0)
    for valid_time, value in stream:
        db.record_step("s", valid_time, [oid], {"a": value})

    best = None
    for position, (valid_time, value) in enumerate(stream):
        if valid_time <= probe and (
            best is None or (valid_time, position) >= (best[0], best[1])
        ):
            best = (valid_time, position, value)

    if best is None:
        with pytest.raises(UnknownAttributeError):
            db.value_as_of(oid, "a", probe)
    else:
        assert db.value_as_of(oid, "a", probe) == best[2]
