"""The typing ratchet.

``pyproject.toml`` promotes ``repro.storage``, ``repro.labbase``,
``repro.server``, ``repro.obs`` and ``repro.analysis`` to
mypy's strict flag set.  CI runs mypy itself; this module keeps two
guarantees testable without mypy installed:

* the ratchet configuration stays present and free of ``ignore_errors``
  escape hatches;
* every function in the ratcheted packages is fully annotated (the
  load-bearing half of ``disallow_untyped_defs`` /
  ``disallow_incomplete_defs``), so annotation regressions fail fast
  locally instead of surfacing only in CI.

When mypy *is* available the full strict check runs here too.
"""

import ast
import os
import shutil
import subprocess
import sys

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
RATCHETED = (
    "repro/storage",
    "repro/labbase",
    "repro/server",
    "repro/obs",
    "repro/analysis",
)


def _ratcheted_files():
    for package in RATCHETED:
        root = os.path.join(SRC, package)
        for dirpath, _, filenames in os.walk(root):
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def test_ratchet_config_present_and_honest():
    text = open(os.path.join(REPO, "pyproject.toml")).read()
    assert "[tool.mypy]" in text
    assert '"repro.storage.*"' in text and '"repro.labbase.*"' in text
    assert '"repro.server.*"' in text and '"repro.obs.*"' in text
    assert '"repro.analysis.*"' in text
    assert "disallow_untyped_defs = true" in text
    assert "ignore_errors = true" not in text  # no blanket escape hatches


def test_ratcheted_packages_are_fully_annotated():
    gaps = []
    for path in _ratcheted_files():
        tree = ast.parse(open(path, encoding="utf-8").read())
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            params = args.posonlyargs + args.args + args.kwonlyargs
            for param in params:
                if param.arg in ("self", "cls"):
                    continue
                if param.annotation is None:
                    gaps.append(f"{path}:{node.lineno} {node.name}({param.arg})")
            for star in (args.vararg, args.kwarg):
                if star is not None and star.annotation is None:
                    gaps.append(f"{path}:{node.lineno} {node.name}(*{star.arg})")
            if node.returns is None:
                gaps.append(f"{path}:{node.lineno} {node.name} -> ?")
    assert not gaps, "unannotated defs in ratcheted packages:\n" + "\n".join(gaps)


@pytest.mark.skipif(
    shutil.which("mypy") is None, reason="mypy not installed (CI runs it)"
)
def test_mypy_strict_on_ratcheted_packages():
    result = subprocess.run(
        [
            sys.executable, "-m", "mypy",
            "-p", "repro.storage", "-p", "repro.labbase", "-p", "repro.server",
            "-p", "repro.obs", "-p", "repro.analysis",
        ],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
