"""Unit tests for the query mix and registry."""

import pytest

from repro.benchmark.operations import (
    CLASS_ATTRIBUTES,
    QUERY_MIX,
    MaterialRegistry,
    OperationTally,
    QueryRunner,
)
from repro.labbase import LabBase, LabClock
from repro.storage import OStoreMM
from repro.util.rng import DeterministicRng


@pytest.fixture
def setup():
    db = LabBase(OStoreMM())
    clock = LabClock()
    db.define_material_class("clone")
    db.define_material_class("tclone", parent="clone")
    db.define_material_class("gel")
    db.define_step_class("determine_sequence", ["sequence", "quality", "read_length"], ["tclone"])
    db.define_step_class("blast_search", ["hits"], ["clone"])
    registry = MaterialRegistry()
    clone = db.create_material("clone", "c-1", clock.tick(), state="waiting_for_assembly")
    tclone = db.create_material("tclone", "tc-1", clock.tick(), state="waiting_for_sequencing")
    registry.add("clone", "c-1", clone)
    registry.add("tclone", "tc-1", tclone)
    db.record_step("determine_sequence", clock.tick(), [tclone], {"quality": 0.8})
    db.record_step("blast_search", clock.tick(), [clone], {"hits": [{"s": 1}, {"s": 2}]})
    runner = QueryRunner(db, registry, DeterministicRng(5))
    return db, registry, runner, clone, tclone


def test_query_mix_weights_are_normalized_enough():
    total = sum(weight for _op, weight in QUERY_MIX)
    assert abs(total - 1.0) < 1e-9
    assert all(weight > 0 for _op, weight in QUERY_MIX)


def test_registry_random_and_counts():
    registry = MaterialRegistry()
    rng = DeterministicRng(1)
    assert registry.random(rng) is None
    registry.add("clone", "c-1", 10)
    assert registry.random(rng) == ("clone", "c-1", 10)
    assert registry.random(rng, "tclone") is None
    assert registry.count() == 1


def test_q1_lookup(setup):
    _db, _registry, runner, clone, tclone = setup
    assert runner.run_q1() in (clone, tclone)
    assert runner.tally.counts["Q1"] == 1


def test_q2_most_recent_tolerates_missing(setup):
    _db, _registry, runner, *_ = setup
    for _ in range(10):
        runner.run_q2()  # must never raise, attrs often absent
    assert runner.tally.counts["Q2"] == 10


def test_q3_state_population(setup):
    _db, _registry, runner, *_ = setup
    populations = [runner.run_q3() for _ in range(10)]
    assert any(p > 0 for p in populations)


def test_q4_hit_list_length(setup):
    _db, _registry, runner, *_ = setup
    lengths = {runner.run_q4() for _ in range(5)}
    assert 2 in lengths  # the stored two-hit list


def test_q5_counts(setup):
    _db, _registry, runner, *_ = setup
    for _ in range(10):
        assert runner.run_q5() >= 0


def test_q6_report(setup):
    _db, _registry, runner, *_ = setup
    rows = [runner.run_q6() for _ in range(10)]
    assert any(r > 0 for r in rows)


def test_q7_history(setup):
    _db, _registry, runner, *_ = setup
    lengths = [runner.run_q7() for _ in range(5)]
    assert any(length and length > 0 for length in lengths)


def test_run_random_query_covers_mix(setup):
    _db, _registry, runner, *_ = setup
    seen = {runner.run_random_query() for _ in range(300)}
    assert seen == {op for op, _w in QUERY_MIX}


def test_dql_and_api_paths_agree(setup):
    db, registry, _runner, clone, tclone = setup
    api = QueryRunner(db, registry, DeterministicRng(9), query_path="api")
    dql = QueryRunner(db, registry, DeterministicRng(9), query_path="dql")
    for _ in range(20):
        assert api.run_q1() == dql.run_q1()
        assert api.run_q2() == dql.run_q2()
        assert api.run_q3() == dql.run_q3()
        assert api.run_q5() == dql.run_q5()


def test_class_attributes_reference_genome_schema():
    from repro.workflow.genome import build_genome_spec

    spec = build_genome_spec()
    declared = {
        attr.name for step in spec.steps for attr in step.attributes
    }
    for attrs in CLASS_ATTRIBUTES.values():
        assert set(attrs) <= declared


def test_tally_merge():
    a = OperationTally({"Q1": 2})
    b = OperationTally({"Q1": 1, "U1": 5})
    merged = a.merged(b)
    assert merged.counts == {"Q1": 3, "U1": 5}
    assert merged.total() == 8
