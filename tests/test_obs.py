"""Tests for the observability layer (repro.obs).

Covers the metric registry against the StorageStats gauge properties,
snapshot/delta/reset under an attached object cache, byte-identical
sampler and tracer JSONL under an injected clock (including a
hypothesis replay property), the served ``sample`` op and the live
monitor over a real socket, the zero-overhead guarantee (sampling
on/off produces bit-identical databases and identical answers), and the
baseline record/compare pipeline the CI regression gate runs.
"""

import filecmp
import io
import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ServerError
from repro.labbase import LabBase
from repro.obs import (
    DERIVED_METRICS,
    IntervalSampler,
    ManualClock,
    UnitTracer,
    gauges_from,
    metric,
    sample_from_snapshots,
)
from repro.obs import baseline as bl
from repro.obs.monitor import monitor
from repro.obs.render import render_drift_table, render_sample_table
from repro.server import (
    LabFlowService,
    LocalClient,
    ServiceClient,
    ServiceRunner,
    bootstrap_schema,
)
from repro.storage import ObjectStoreSM
from repro.storage.stats import STAT_FIELDS, StorageStats

# -- clock ------------------------------------------------------------------


def test_manual_clock_is_deterministic():
    clock = ManualClock(start=10.0, step=0.5)
    assert [clock(), clock(), clock()] == [10.0, 10.5, 11.0]
    clock.advance(2.0)
    assert clock() == 13.5
    replay = ManualClock(start=10.0, step=0.5)
    assert [replay() for _ in range(3)] == [10.0, 10.5, 11.0]


# -- registry ---------------------------------------------------------------


def test_registry_reads_only_declared_counters():
    declared = set(STAT_FIELDS)
    seen = set()
    for spec in DERIVED_METRICS:
        assert spec.name not in seen
        seen.add(spec.name)
        assert spec.numerator in declared
        assert set(spec.denominator) <= declared


def test_metric_lookup():
    assert metric("hit_ratio").numerator == "buffer_hits"
    with pytest.raises(KeyError):
        metric("no_such_gauge")


def test_gauges_default_on_zero_denominator():
    gauges = gauges_from({})
    for spec in DERIVED_METRICS:
        assert gauges[spec.name] == spec.default


def test_gauge_properties_match_registry():
    stats = StorageStats()
    stats.buffer_hits = 30
    stats.major_faults = 10
    stats.prefetch_hits = 5
    stats.cache_hits = 8
    stats.cache_misses = 2
    stats.cache_coalesced = 4
    stats.objects_written = 12
    stats.group_commits = 3
    stats.sessions_per_group = 9
    stats.commit_stalls = 1
    snapshot = stats.snapshot()
    for spec in DERIVED_METRICS:
        assert getattr(stats, spec.name) == pytest.approx(spec.compute(snapshot))


# -- StorageStats under an attached object cache ----------------------------


def test_snapshot_delta_reset_with_object_cache():
    sm = ObjectStoreSM(buffer_pages=64)
    db = LabBase(sm, object_cache=128)
    db.define_material_class("m")
    db.define_step_class("s", ["a"], ["m"])
    oid = db.create_material("m", "m-0", 1)
    before = sm.stats.snapshot()
    assert set(before) == set(STAT_FIELDS)
    db.record_step("s", 2, [oid], {"a": 1})
    for _ in range(3):
        db.most_recent(oid, "a")
    after = sm.stats.snapshot()
    delta = sm.stats.delta(before)
    assert set(delta) == set(STAT_FIELDS)
    for name in STAT_FIELDS:
        assert delta[name] == after[name] - before[name]
    assert after["cache_hits"] > 0  # the cache served repeat reads
    assert gauges_from(delta)["cache_hit_ratio"] > 0.0
    sm.stats.reset()
    assert all(value == 0 for value in sm.stats.snapshot().values())
    sm.close()


# -- sampler determinism ----------------------------------------------------


def _scripted_source(frames):
    iterator = iter(frames)
    return lambda: next(iterator)


_FRAMES = [
    {"buffer_hits": 0, "major_faults": 0, "group_commits": 0},
    {"buffer_hits": 40, "major_faults": 10, "group_commits": 2},
    {"buffer_hits": 90, "major_faults": 10, "group_commits": 5},
]


def _sampled_jsonl(frames):
    sink = io.StringIO()
    sampler = IntervalSampler(
        _scripted_source(frames), clock=ManualClock(start=1.0, step=0.25), sink=sink
    )
    for _ in frames:
        sampler.sample()
    return sink.getvalue(), sampler.samples


def test_sampler_jsonl_is_byte_identical_across_replays():
    first, samples = _sampled_jsonl(_FRAMES)
    second, _ = _sampled_jsonl(_FRAMES)
    assert first == second
    lines = first.splitlines()
    assert len(lines) == len(_FRAMES)
    for line in lines:
        decoded = json.loads(line)
        assert decoded == json.loads(json.dumps(decoded, sort_keys=True))


def test_sampler_gauges_are_per_interval():
    _text, samples = _sampled_jsonl(_FRAMES)
    assert samples[0].dt == 0.0 and samples[1].dt == 0.25
    # second interval: 50 hits, 0 faults -> interval hit ratio 1.0
    assert samples[2].delta["buffer_hits"] == 50
    assert samples[2].gauges["hit_ratio"] == 1.0
    # first real interval: 40 hits / 10 faults
    assert samples[1].gauges["hit_ratio"] == pytest.approx(0.8)


@settings(max_examples=25, deadline=None)
@given(
    increments=st.lists(
        st.fixed_dictionaries(
            {
                "buffer_hits": st.integers(min_value=0, max_value=1000),
                "major_faults": st.integers(min_value=0, max_value=1000),
                "group_commits": st.integers(min_value=0, max_value=50),
            }
        ),
        min_size=1,
        max_size=8,
    )
)
def test_sampler_replay_property(increments):
    frames = []
    totals = {"buffer_hits": 0, "major_faults": 0, "group_commits": 0}
    for step in increments:
        totals = {name: totals[name] + step[name] for name in totals}
        frames.append(dict(totals))
    first, samples = _sampled_jsonl(frames)
    second, _ = _sampled_jsonl(frames)
    assert first == second  # byte-identical under the injected clock
    summed = {name: 0 for name in totals}
    for sample in samples:
        for name in summed:
            summed[name] += sample.delta[name]
    assert summed == totals  # deltas partition the cumulative counters


# -- tracer determinism -----------------------------------------------------


def _traced_jsonl():
    sink = io.StringIO()
    tracer = UnitTracer(clock=ManualClock(start=0.0, step=0.001), sink=sink)
    tracer.unit_begin("alice", "record_step")
    tracer.lock_wait("alice", "record_step", attempt=1)
    tracer.unit_end(
        "alice",
        "record_step",
        lock_seconds=0.002,
        exec_seconds=0.004,
        drain_seconds=0.0005,
    )
    tracer.group_flush(width=2, units=3)
    tracer.abort("bob", "set_state", error_type="LockError")
    return sink.getvalue(), tracer


def test_tracer_jsonl_is_byte_identical_across_replays():
    first, tracer = _traced_jsonl()
    second, _ = _traced_jsonl()
    assert first == second
    assert first == tracer.jsonl()
    events = [json.loads(line) for line in first.splitlines()]
    assert [event["event"] for event in events] == [
        "unit_begin", "lock_wait", "unit_end", "group_flush", "abort",
    ]
    assert [event["seq"] for event in events] == list(range(5))


def test_tracer_histograms_and_summary():
    _text, tracer = _traced_jsonl()
    summary = tracer.summary()
    assert summary["events"] == 5
    assert summary["by_event"] == {
        "unit_begin": 1, "lock_wait": 1, "unit_end": 1,
        "group_flush": 1, "abort": 1,
    }
    histograms = summary["histograms"]
    assert set(histograms) == {"lock", "exec", "drain"}
    assert histograms["exec"]["total"] == 1
    assert histograms["exec"]["sum_seconds"] == pytest.approx(0.004)


# -- service integration ----------------------------------------------------


def _service_db(tmp_path=None, name="db.pages"):
    path = None if tmp_path is None else os.path.join(str(tmp_path), name)
    sm = ObjectStoreSM(path=path, buffer_pages=64)
    db = LabBase(sm)
    bootstrap_schema(db)
    return db


def _run_workload(client):
    oid = client.create_material("clone", "a-0", 1, state="active")
    client.record_step("measure", 2, [oid], {"value": 7})
    client.set_state(oid, "done", 3)
    assert client.most_recent(oid, "value") == 7
    return oid


def _traced_service_run(tmp_path, name):
    db = _service_db(tmp_path, name)
    tracer = UnitTracer(clock=ManualClock(start=0.0, step=0.001))
    service = LabFlowService(db, group_commit=True, group_cap=2, tracer=tracer)
    client = LocalClient(service, "alice")
    _run_workload(client)
    client.close()
    service.shutdown()
    jsonl = tracer.jsonl()
    db.storage.close()
    return jsonl


def test_service_trace_is_byte_identical_across_runs(tmp_path):
    first = _traced_service_run(tmp_path, "one.pages")
    second = _traced_service_run(tmp_path, "two.pages")
    assert first == second
    events = [json.loads(line)["event"] for line in first.splitlines()]
    assert "unit_begin" in events and "unit_end" in events
    assert "group_flush" in events  # the coordinator reported its widths


def test_service_sample_payload():
    db = _service_db()
    tracer = UnitTracer(clock=ManualClock())
    service = LabFlowService(db, group_commit=True, group_cap=2, tracer=tracer)
    client = LocalClient(service, "alice")
    _run_workload(client)
    payload = service.sample()
    assert set(payload["counters"]) == set(STAT_FIELDS)
    assert set(payload["gauges"]) == {spec.name for spec in DERIVED_METRICS}
    assert payload["gauges"]["group_width"] > 0.0
    assert payload["open_sessions"] == 1
    assert payload["trace"]["events"] > 0
    client.close()
    service.shutdown()
    db.storage.close()


def test_observability_off_is_bit_identical(tmp_path):
    """Tracing + sampling attached vs absent: same bytes, same answers."""
    answers = {}
    for name, traced in (("plain.pages", False), ("traced.pages", True)):
        db = _service_db(tmp_path, name)
        tracer = UnitTracer(clock=ManualClock()) if traced else None
        service = LabFlowService(db, group_commit=True, group_cap=2, tracer=tracer)
        sampler = (
            IntervalSampler(service.stats_snapshot, clock=ManualClock())
            if traced
            else None
        )
        client = LocalClient(service, "alice")
        oid = _run_workload(client)
        if sampler is not None:
            sampler.sample()
        answers[name] = (
            client.most_recent(oid, "value"),
            client.state_of(oid),
            client.history_len(oid),
        )
        if sampler is not None:
            sampler.sample()
        client.close()
        service.shutdown()
        db.storage.close()
    assert answers["plain.pages"] == answers["traced.pages"]
    assert filecmp.cmp(
        os.path.join(str(tmp_path), "plain.pages"),
        os.path.join(str(tmp_path), "traced.pages"),
        shallow=False,
    )


# -- the live monitor -------------------------------------------------------


@pytest.fixture
def served(tmp_path):
    db = _service_db(tmp_path)
    tracer = UnitTracer()
    service = LabFlowService(db, group_commit=True, group_cap=4, tracer=tracer)
    runner = ServiceRunner(service)
    host, port = runner.start()
    yield host, port, service
    runner.stop()
    db.storage.close()


def test_monitor_streams_samples_over_socket(served):
    host, port, _service = served
    alice = ServiceClient(host, port, "alice")
    _run_workload(alice)
    alice.drain()
    out = io.StringIO()
    collected = monitor(
        host,
        port,
        samples=3,
        interval=0.0,
        out=out,
        clock=ManualClock(start=5.0, step=0.5),
        sleep=lambda seconds: None,
    )
    alice.close()
    assert len(collected) == 3
    assert collected[0].gauges["group_width"] > 0.0  # group commits visible
    text = out.getvalue()
    header = render_sample_table([]).splitlines()[0]
    assert header in text
    assert "group_width" in header and "commit_stall_ratio" in header
    assert "unit phase durations (server-side)" in text
    # streamed rows align with the header printed up front
    rows = [line for line in text.splitlines() if line.startswith("   ")]
    assert any(len(row) == len(header) for row in rows)


def test_monitor_refuses_dead_address():
    with pytest.raises(ServerError):
        monitor(
            "127.0.0.1", 1, samples=1, interval=0.0, out=io.StringIO(),
            sleep=lambda seconds: None,
        )


# -- baselines --------------------------------------------------------------

_A4_PAYLOAD = {
    "on": {
        "cache_hits": 100, "cache_misses": 0, "cache_coalesced": 40,
        "objects_written": 60, "elapsed_ms": 12.5, "verified": True,
    },
    "off": {"cache_hits": 0, "cache_misses": 100},
    "speedup": 1.9,
}


def test_flatten_counters_keeps_ints_only():
    flat = bl.flatten_counters(_A4_PAYLOAD)
    assert flat["on.cache_hits"] == 100
    assert "on.elapsed_ms" not in flat  # timing suffix excluded
    assert "on.verified" not in flat  # bools excluded
    assert "speedup" not in flat  # floats excluded


def test_canonicalize_selects_schema_gauges():
    canonical = bl.canonicalize("A4", _A4_PAYLOAD)
    assert canonical["version"] == bl.BASELINE_VERSION
    assert canonical["schema"] == "A4"
    assert canonical["bench"] == "a4_object_cache"
    assert set(canonical["gauges"]) == set(bl.BASELINE_SCHEMAS["A4"])
    assert canonical["gauges"]["cache_hit_ratio"] == 1.0
    assert canonical["gauges"]["coalesce_ratio"] == pytest.approx(0.4)


def test_record_and_compare_round_trip(tmp_path):
    results = os.path.join(str(tmp_path), "results")
    os.makedirs(results)
    bl.dump_json(bl.results_path("A4", results), _A4_PAYLOAD)
    baseline_file = bl.record("A4", results, str(tmp_path))
    assert os.path.basename(baseline_file) == "BENCH_A4.json"
    drifts, notes = bl.compare_files(baseline_file, results)
    assert drifts == [] and notes == []


def test_compare_flags_counter_and_gauge_drift(tmp_path):
    results = os.path.join(str(tmp_path), "results")
    os.makedirs(results)
    bl.dump_json(bl.results_path("A4", results), _A4_PAYLOAD)
    baseline_file = bl.record("A4", results, str(tmp_path))
    drifted = json.loads(json.dumps(_A4_PAYLOAD))
    drifted["on"]["cache_hits"] = 10  # far outside the 10% band
    drifted["on"]["cache_misses"] = 90  # gauge collapses too
    bl.dump_json(bl.results_path("A4", results), drifted)
    drifts, _notes = bl.compare_files(baseline_file, results)
    kinds = {(drift.metric, drift.kind) for drift in drifts}
    assert ("on.cache_hits", "counter") in kinds
    assert ("cache_hit_ratio", "gauge") in kinds
    table = render_drift_table([drift.as_dict() for drift in drifts])
    assert "cache_hit_ratio" in table


def test_compare_flags_missing_counters(tmp_path):
    results = os.path.join(str(tmp_path), "results")
    os.makedirs(results)
    bl.dump_json(bl.results_path("A4", results), _A4_PAYLOAD)
    baseline_file = bl.record("A4", results, str(tmp_path))
    shrunk = json.loads(json.dumps(_A4_PAYLOAD))
    del shrunk["on"]["cache_coalesced"]
    bl.dump_json(bl.results_path("A4", results), shrunk)
    drifts, _notes = bl.compare_files(baseline_file, results)
    assert any(drift.kind == "missing" for drift in drifts)


def test_render_drift_table_empty_case():
    assert "no drift" in render_drift_table([])


def test_committed_baselines_are_canonical():
    """The checked-in BENCH files parse and carry their declared shape."""
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    for schema in sorted(bl.BASELINE_SCHEMAS):
        path = bl.baseline_path(schema, repo)
        assert os.path.exists(path), f"missing committed baseline {path}"
        payload = bl.load_json(path)
        assert payload["version"] == bl.BASELINE_VERSION
        assert payload["schema"] == schema
        assert payload["bench"] == bl.BASELINE_BENCHES[schema]
        assert set(payload["gauges"]) == set(bl.BASELINE_SCHEMAS[schema])
        assert payload["counters"], "baseline recorded no counters"
        for value in payload["counters"].values():
            assert isinstance(value, int)


# -- the CLI gate -----------------------------------------------------------


def test_cli_bench_compare_exit_codes(tmp_path):
    from repro.cli import main

    results = os.path.join(str(tmp_path), "results")
    os.makedirs(results)
    bl.dump_json(bl.results_path("A4", results), _A4_PAYLOAD)
    baseline_file = bl.record("A4", results, str(tmp_path))
    report = os.path.join(str(tmp_path), "report.json")
    assert (
        main(
            ["bench", "compare", "--baseline", baseline_file,
             "--results", results, "--report", report]
        )
        == 0
    )
    assert json.load(open(report))["ok"] is True

    drifted = json.loads(json.dumps(_A4_PAYLOAD))
    drifted["on"]["cache_hits"] = 10
    bl.dump_json(bl.results_path("A4", results), drifted)
    assert (
        main(
            ["bench", "compare", "--baseline", baseline_file,
             "--results", results, "--report", report]
        )
        == 1
    )
    assert json.load(open(report))["ok"] is False


def test_cli_bench_record_missing_results(tmp_path):
    from repro.cli import main

    empty = os.path.join(str(tmp_path), "nothing")
    os.makedirs(empty)
    assert main(["bench", "record", "--results", empty, "--out", str(tmp_path)]) == 2
