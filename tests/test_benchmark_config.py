"""Unit tests for benchmark configuration."""

import pytest

from repro.benchmark.config import DEFAULT, TINY, BenchmarkConfig
from repro.errors import ConfigError


def test_defaults_are_valid():
    assert DEFAULT.total_clones() == DEFAULT.clones_per_interval * len(DEFAULT.intervals)
    assert TINY.total_clones() < DEFAULT.total_clones()


def test_interval_labels_match_paper_style():
    config = BenchmarkConfig(intervals=(0.5, 1.0, 1.5, 2.0))
    assert config.interval_labels == ("0.5X", "1.0X", "1.5X", "2.0X")


def test_invalid_configs_rejected():
    with pytest.raises(ConfigError):
        BenchmarkConfig(clones_per_interval=0)
    with pytest.raises(ConfigError):
        BenchmarkConfig(intervals=())
    with pytest.raises(ConfigError):
        BenchmarkConfig(intervals=(1.0, 0.5))
    with pytest.raises(ConfigError):
        BenchmarkConfig(query_path="sql")
    with pytest.raises(ConfigError):
        BenchmarkConfig(queries_per_intake=-1)
    with pytest.raises(ConfigError):
        BenchmarkConfig(buffer_pages=0)
    with pytest.raises(ConfigError):
        BenchmarkConfig(blast_mean_hits=10, blast_max_hits=5)


def test_scaled_multiplies_clone_count():
    assert DEFAULT.scaled(2).clones_per_interval == DEFAULT.clones_per_interval * 2
    assert DEFAULT.scaled(0.0001).clones_per_interval == 1


def test_with_overrides():
    config = DEFAULT.with_(seed=7, query_path="dql")
    assert config.seed == 7
    assert config.query_path == "dql"
    assert config.clones_per_interval == DEFAULT.clones_per_interval


def test_readahead_knob():
    from repro.storage import DEFAULT_READAHEAD_PAGES

    assert DEFAULT.readahead == DEFAULT_READAHEAD_PAGES  # batched I/O on
    assert DEFAULT.with_(readahead=0).readahead == 0
    with pytest.raises(ConfigError):
        BenchmarkConfig(readahead=-1)
