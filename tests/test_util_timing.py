"""Unit tests for the resource meter."""

import pytest

from repro.util.timing import ResourceMeter, ResourceUsage


class _FakeFaults:
    def __init__(self):
        self.major_faults = 0


def test_lap_before_start_raises():
    with pytest.raises(RuntimeError):
        ResourceMeter().lap()


def test_lap_measures_fault_delta():
    faults = _FakeFaults()
    meter = ResourceMeter(fault_source=faults)
    meter.start()
    faults.major_faults = 7
    first = meter.lap(size_bytes=100)
    assert first.majflt == 7
    faults.major_faults = 10
    second = meter.lap(size_bytes=200)
    assert second.majflt == 3
    assert second.size_bytes == 200


def test_elapsed_is_positive_and_split_per_interval():
    meter = ResourceMeter()
    meter.start()
    total = 0
    for _ in range(10000):
        total += 1
    first = meter.lap()
    second = meter.lap()
    assert first.elapsed_sec >= 0
    assert second.elapsed_sec >= 0
    assert len(meter.intervals) == 2


def test_total_sums_intervals_and_keeps_latest_size():
    meter = ResourceMeter()
    meter.start()
    meter.lap(size_bytes=100)
    meter.lap(size_bytes=250)
    total = meter.total()
    assert total.size_bytes == 250
    assert total.majflt == 0


def test_start_resets_history():
    meter = ResourceMeter()
    meter.start()
    meter.lap()
    meter.start()
    assert meter.intervals == []


def test_usage_addition():
    a = ResourceUsage(1.0, 0.5, 0.1, 10, 100)
    b = ResourceUsage(2.0, 1.0, 0.2, 5, 80)
    combined = a + b
    assert combined.elapsed_sec == pytest.approx(3.0)
    assert combined.user_cpu_sec == pytest.approx(1.5)
    assert combined.sys_cpu_sec == pytest.approx(0.3)
    assert combined.majflt == 15
    assert combined.size_bytes == 100  # latest/max, not summed


def test_as_rows_matches_paper_resources():
    usage = ResourceUsage(1.0, 0.5, 0.1, 10, 0)
    rows = dict(usage.as_rows())
    assert set(rows) == {
        "elapsed sec", "user cpu sec", "sys cpu sec", "majflt", "size (bytes)",
    }
    assert rows["size (bytes)"] == "-"  # main-memory convention


def test_meter_without_fault_source_reads_zero():
    meter = ResourceMeter()
    meter.start()
    assert meter.lap().majflt == 0
