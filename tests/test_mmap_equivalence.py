"""Property test: the mmap backend is ObjectStore with a different read path.

``MMapStoreSM`` inherits every policy from ``ObjectStoreSM`` — segments,
buffer pool, vectored commit, epoch+CRC trailers — and changes only how
page images reach memory (zero-copy views of a shared mapping instead of
buffered ``pread``).  That claim is testable: any workload must leave
the two backends with **identical query answers** and **bit-identical
logical contents** — the ``.pages`` file byte for byte, the ``.meta``
blob equal once the backend's self-identifying ``manager`` key is
popped.  Three workload shapes:

* random hypothesis streams through the shared workload interpreter,
* the seeded E8-style client mix through the served layer, and
* random K-session interleavings with group commit on.

A cross-open check rides along: a database written by one backend must
open, verify and answer under the other — same format, different mmap.
"""

import os
import pickle
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.labbase import LabBase
from repro.server import ClientRunner, LabFlowService, LocalClient, bootstrap_schema
from repro.storage import MMapStoreSM, ObjectStoreSM

from tests.test_readahead_equivalence import _answers, _run_workload
from tests.test_server_properties import _drive_units

#: Small pool so workloads actually fault through the mmap read path.
POOL_PAGES = 24

BACKENDS = [("ostore", ObjectStoreSM), ("mmap", MMapStoreSM)]


def _served_answers(db) -> dict:
    """Query snapshot over the served schema (clone / measure)."""
    snapshot: dict = {"states": {}, "materials": {}}
    for state in ("active", "busy", "done"):
        snapshot["states"][state] = sorted(db.in_state(state))
    for oid, record in db.iter_materials():
        snapshot["materials"][record["key"]] = {
            "state": db.state_of(oid),
            "history_len": db.history_length(oid),
            "history": [
                (step["valid_time"], step["results"])
                for _oid, step in db.material_history(oid)
            ],
        }
    snapshot["counts"] = (
        db.count_materials("clone"), db.count_steps("measure"),
    )
    return snapshot


def _logical_contents(directory: str) -> dict[str, object]:
    """Database files with backend identity factored out.

    Page files compare as raw bytes; the ``.meta`` blob compares as the
    unpickled dict minus the ``manager`` name — the one field that
    legitimately differs between backends.
    """
    contents: dict[str, object] = {}
    for name in sorted(os.listdir(directory)):
        with open(os.path.join(directory, name), "rb") as handle:
            blob = handle.read()
        if name.endswith(".meta"):
            meta = pickle.loads(blob)
            meta.pop("manager", None)
            contents[name] = meta
        else:
            contents[name] = blob
    return contents


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(codes=st.lists(st.integers(0, 9999), min_size=8, max_size=50))
def test_mmap_equals_ostore_on_random_workloads(codes):
    answers: dict[str, dict] = {}
    files: dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as workdir:
        for backend_name, cls in BACKENDS:
            directory = os.path.join(workdir, backend_name)
            os.makedirs(directory)
            sm = cls(
                path=os.path.join(directory, "db.pages"),
                buffer_pages=POOL_PAGES,
            )
            db = LabBase(sm)
            _run_workload(db, codes)
            answers[backend_name] = _answers(db)
            sm.close()
            files[backend_name] = _logical_contents(directory)
    assert answers["mmap"] == answers["ostore"]
    assert files["mmap"] == files["ostore"]


def _served_e8_run(cls, directory, *, sessions=3, units=30):
    """The seeded E8-style client mix through the served layer."""
    sm = cls(
        path=os.path.join(directory, "db.pages"),
        buffer_pages=POOL_PAGES,
        checkpoint_every=0,
    )
    db = LabBase(sm)
    bootstrap_schema(db)
    service = LabFlowService(
        db, group_commit=True, group_cap=3, retry_backoff=0.0
    )
    tallies = []
    for i in range(sessions):
        client = LocalClient(service, f"s{i}")
        runner = ClientRunner(client, seed=100 + i, materials=3)
        tallies.append(runner.run(units))
        client.close()
    service.shutdown()
    assert db.verify_storage().ok
    sm.drop_buffer()  # cold snapshot: answers fault through the read path
    answers = _served_answers(db)
    stats = sm.stats.snapshot()
    sm.close()
    return tallies, answers, stats, _logical_contents(directory)


def test_mmap_equals_ostore_on_the_e8_mix():
    results = {}
    with tempfile.TemporaryDirectory() as workdir:
        for backend_name, cls in BACKENDS:
            directory = os.path.join(workdir, backend_name)
            os.makedirs(directory)
            results[backend_name] = _served_e8_run(cls, directory)
    tallies_mm, answers_mm, stats_mm, files_mm = results["mmap"]
    tallies_os, answers_os, stats_os, files_os = results["ostore"]
    assert tallies_mm == tallies_os
    assert answers_mm == answers_os
    assert files_mm == files_os
    # the mmap run really took the zero-copy read path
    assert stats_mm["mapped_reads"] > 0
    assert stats_os["mapped_reads"] == 0
    # and the logical I/O was identical
    for counter in ("objects_read", "objects_written", "page_writes",
                    "major_faults", "commits"):
        assert stats_mm[counter] == stats_os[counter], counter


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    codes=st.lists(st.integers(0, 9999), min_size=5, max_size=40),
    n_sessions=st.integers(min_value=2, max_value=4),
)
def test_mmap_equals_ostore_on_served_interleavings(codes, n_sessions):
    """Random K-session interleavings with group commit on."""
    files: dict[str, dict] = {}
    answers: dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as workdir:
        for backend_name, cls in BACKENDS:
            directory = os.path.join(workdir, backend_name)
            os.makedirs(directory)
            sm = cls(
                path=os.path.join(directory, "db.pages"),
                buffer_pages=POOL_PAGES,
                checkpoint_every=0,
            )
            db = LabBase(sm)
            bootstrap_schema(db)
            service = LabFlowService(
                db, group_commit=True, group_cap=3, retry_backoff=0.0
            )
            _drive_units(
                service, [f"s{i}" for i in range(n_sessions)], codes
            )
            service.shutdown()
            assert db.verify_storage().ok
            answers[backend_name] = _served_answers(db)
            sm.close()
            files[backend_name] = _logical_contents(directory)
    assert answers["mmap"] == answers["ostore"]
    assert files["mmap"] == files["ostore"]


def test_databases_cross_open_between_backends(tmp_path):
    """Same on-disk format: each backend opens the other's database."""
    codes = [(index * 211 + 17) % 9973 for index in range(40)]
    for writer_name, writer_cls in BACKENDS:
        reader_cls = dict(BACKENDS)[
            "mmap" if writer_name == "ostore" else "ostore"
        ]
        directory = os.path.join(tmp_path, writer_name)
        os.makedirs(directory)
        path = os.path.join(directory, "db.pages")
        sm = writer_cls(path=path, buffer_pages=POOL_PAGES)
        db = LabBase(sm)
        _run_workload(db, codes)
        expected = _answers(db)
        sm.close()

        reopened = reader_cls(path=path, buffer_pages=POOL_PAGES)
        reopened.verify().raise_if_bad()
        assert _answers(LabBase(reopened)) == expected
        reopened.close()
