"""Correctness properties of the served multi-session layer.

Two families:

* **Serializability as bit-identity** — a randomized interleaving of K
  sessions' units (creates, steps, state transitions, queries, with
  conflict/retry) must leave the database *bit-for-bit identical* to
  replaying the same completed units through a single session, one
  commit per unit.  Group commit defers only page flush / sync /
  checkpoint; every unit's object writes drain at the unit's own end,
  in oid order, so grouping must not be observable in the file bytes.
  Runs for group commit on and off, on every persistent server version
  that supports concurrency (discovered, not listed).

* **Crash matrix under group commit** — the deterministic served mix is
  killed at every (strided) write point with the fault injector, then
  audited with the same trichotomy the storage-level matrix enforces:
  loud open failure, or verify-clean, or recover-then-verify-clean with
  every surviving record still deserializable.  A write-point/byte
  determinism test pins that the served workload is replayable at all.

Set ``CRASH_MATRIX_STRIDE=k`` to test every k-th write point (CI smoke).
"""

import os
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.storage as storage_module
from repro.errors import InjectedCrashError, StorageError
from repro.labbase import LabBase
from repro.server import LabFlowService, LocalClient, bootstrap_schema
from repro.storage import FaultInjector, ObjectStoreSM
from repro.storage.base import StorageManager

STATES = ("active", "busy", "done")


def _concurrent_persistent_classes():
    """Every exported persistent SM class that supports concurrency."""
    found = []
    for name in dir(storage_module):
        obj = getattr(storage_module, name)
        if (
            isinstance(obj, type)
            and issubclass(obj, StorageManager)
            and getattr(obj, "supports_concurrency", False)
            and getattr(obj, "persistent", False)
        ):
            found.append(obj)
    return sorted(found, key=lambda cls: cls.__name__)


CONCURRENT_CLASSES = _concurrent_persistent_classes()


def test_discovery_finds_the_page_server():
    assert ObjectStoreSM in CONCURRENT_CLASSES


def _file_bytes(directory):
    blobs = {}
    for name in sorted(os.listdir(directory)):
        with open(os.path.join(directory, name), "rb") as handle:
            blobs[name] = handle.read()
    return blobs


def _drive_units(service, names, codes):
    """Deterministic interleaved interpreter over the service.

    Each code picks a session, an operation kind, and a target; every
    session starts with one seed material, and the pool each session
    draws targets from includes every session's seed — so interleavings
    genuinely contend on shared pages and exercise the stall path.
    """
    clients = {name: LocalClient(service, name) for name in names}
    own = {name: [] for name in names}
    tick = 0
    for name in names:
        tick += 1
        own[name].append(
            clients[name].create_material(
                "clone", f"{name}-seed", tick, state="active"
            )
        )
    for code in codes:
        tick += 1
        name = names[code % len(names)]
        client = clients[name]
        pool = own[name] + [own[other][0] for other in names]
        target = pool[code % len(pool)]
        kind = code % 5
        if kind == 0:
            own[name].append(
                client.create_material(
                    "clone", f"{name}-{tick}", tick, state=STATES[code % 3]
                )
            )
        elif kind == 1:
            involves = [target]
            extra = pool[(code // 7) % len(pool)]
            if extra != target:
                involves.append(extra)
            client.record_step("measure", tick, involves, {"value": code})
        elif kind == 2:
            client.set_state(target, STATES[code % 3], tick)
        elif kind == 3:
            client.state_of(target)
        else:
            client.history_len(target)
    for name in names:
        clients[name].close()


def _interleaved_run(cls, directory, codes, n_sessions, group):
    """Run the interleaved mix; returns (completed units, file bytes)."""
    sm = cls(path=os.path.join(directory, "db.pages"), checkpoint_every=0)
    db = LabBase(sm)
    bootstrap_schema(db)
    service = LabFlowService(
        db, group_commit=group, group_cap=3, retry_backoff=0.0
    )
    _drive_units(service, [f"s{i}" for i in range(n_sessions)], codes)
    completed = service.completed_units()
    service.shutdown()
    assert db.verify_storage().ok
    sm.close()
    return completed, _file_bytes(directory)


def _serial_replay(cls, directory, completed):
    """The serial witness: one session, one commit per unit."""
    sm = cls(path=os.path.join(directory, "db.pages"), checkpoint_every=0)
    db = LabBase(sm)
    bootstrap_schema(db)
    service = LabFlowService(db, group_commit=False)
    service.open_session("serial")
    for _session, op, args in completed:
        service.submit("serial", op, args)
    service.shutdown()
    sm.close()
    return _file_bytes(directory)


@pytest.mark.parametrize(
    "cls", CONCURRENT_CLASSES, ids=lambda cls: cls.__name__
)
@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    codes=st.lists(st.integers(0, 9999), min_size=5, max_size=40),
    n_sessions=st.integers(min_value=2, max_value=4),
    group=st.booleans(),
)
def test_interleaved_sessions_equal_serial_witness(
    cls, codes, n_sessions, group
):
    with tempfile.TemporaryDirectory() as interleaved_dir:
        with tempfile.TemporaryDirectory() as serial_dir:
            completed, interleaved = _interleaved_run(
                cls, interleaved_dir, codes, n_sessions, group
            )
            serial = _serial_replay(cls, serial_dir, completed)
            assert interleaved == serial


# -- crash matrix under group commit -----------------------------------------

_CRASH_CODES = [(index * 137 + 29) % 9001 for index in range(48)]
_CRASH_SESSIONS = 3


def _stride() -> int:
    return max(1, int(os.environ.get("CRASH_MATRIX_STRIDE", "1")))


def _served_crash_workload(path, injector=None):
    """The deterministic served mix the crash matrix sweeps."""
    sm = ObjectStoreSM(path=path, checkpoint_every=1, fault_injector=injector)
    db = LabBase(sm)
    bootstrap_schema(db)
    service = LabFlowService(
        db, group_commit=True, group_cap=3, retry_backoff=0.0
    )
    _drive_units(service, [f"s{i}" for i in range(_CRASH_SESSIONS)], _CRASH_CODES)
    service.shutdown()
    return sm


def test_served_write_points_and_bytes_are_deterministic(tmp_path):
    """Same mix twice: same write-point count, bit-identical files.

    This is what makes ``crash_after_writes=N`` name the *same* crash on
    every run — the precondition for the sweep below — and pins that
    group commit keeps the served workload bit-for-bit stable."""
    counts = []
    blobs = []
    for run in range(2):
        directory = tmp_path / f"run{run}"
        directory.mkdir()
        injector = FaultInjector()
        sm = _served_crash_workload(str(directory / "db.pages"), injector)
        counts.append(injector.writes_seen)
        sm.close()
        blobs.append(_file_bytes(str(directory)))
    assert counts[0] == counts[1] > 0
    assert blobs[0] == blobs[1]


def _audit_after_crash(path):
    """The legal-outcome trichotomy, at the served-workload level."""
    try:
        reopened = ObjectStoreSM(path=path)
    except StorageError:
        return  # outcome 1: detectably damaged, refuses to open
    try:
        report = reopened.verify()
        if not report.ok:  # outcome 3: damage reported, recovery repairs
            reopened.recover()
            reopened.verify().raise_if_bad()
        # either way: every surviving record must still deserialize
        for oid in reopened.oids():
            reopened.read(oid)
    finally:
        reopened.close()


@pytest.mark.parametrize("torn", [False, True], ids=["clean", "torn"])
def test_served_group_commit_crash_matrix(tmp_path, torn):
    count_dir = tmp_path / "count"
    count_dir.mkdir()
    injector = FaultInjector()
    sm = _served_crash_workload(str(count_dir / "db.pages"), injector)
    total = injector.writes_seen
    sm.close()
    assert total > 0

    for crash_at in range(0, total, _stride()):
        directory = tmp_path / f"crash-{crash_at}"
        directory.mkdir()
        path = str(directory / "db.pages")
        with pytest.raises(InjectedCrashError):
            _served_crash_workload(
                path,
                FaultInjector(crash_after_writes=crash_at, torn_write=torn),
            )
        _audit_after_crash(path)
