"""Tests for the workflow text DSL."""

import pytest

from repro.errors import InvalidWorkflowError
from repro.workflow.dsl import load_workflow, parse_workflow, render_workflow
from repro.workflow.genome import build_genome_spec
from repro.workflow.spec import ValueKind

TOY = """
# a two-step toy pipeline
workflow toy

material widget key wd initial raw -- a thing to polish
material box key bx initial empty

step polish involves widget -- make it shiny
    attr shine : float
    attr operator : identifier

step pack involves widget, box creates box
    attr weight : integer

transition raw -> polished via polish fail 0.1 -> raw test test:shiny_enough
transition polished -> packed via pack
transition empty -> full via fill_box

step fill_box involves box
    attr count : integer

terminal packed, full
"""


def test_parse_toy_workflow():
    spec = parse_workflow(TOY)
    assert spec.name == "toy"
    assert [m.class_name for m in spec.materials] == ["widget", "box"]
    widget = spec.material("widget")
    assert widget.key_prefix == "wd"
    assert widget.initial_state == "raw"
    assert widget.description == "a thing to polish"

    polish = spec.step("polish")
    assert polish.attribute_names == ("shine", "operator")
    assert polish.attribute("shine").kind is ValueKind.FLOAT
    assert polish.description == "make it shiny"

    pack = spec.step("pack")
    assert pack.involves_classes == ("widget", "box")
    assert pack.creates == ("box",)

    first = spec.transitions[0]
    assert first.fail_probability == 0.1
    assert first.fail_state == "raw"
    assert first.test == "test:shiny_enough"
    assert spec.terminal_states == ("packed", "full")


def test_load_workflow_validates():
    graph = load_workflow(TOY)
    assert graph.is_terminal("packed")
    assert graph.transition_for("raw").step == "polish"


def test_parse_errors_carry_line_numbers():
    with pytest.raises(InvalidWorkflowError, match="line 2"):
        parse_workflow("workflow w\nbogus directive here\n")


def test_missing_workflow_name():
    with pytest.raises(InvalidWorkflowError, match="workflow"):
        parse_workflow("material m key m initial s\n")


def test_unknown_attribute_kind():
    text = """workflow w
material m key m initial s
step go involves m
    attr x : complex128
transition s -> t via go
terminal t
"""
    with pytest.raises(InvalidWorkflowError, match="unknown attribute kind"):
        parse_workflow(text)


def test_attr_outside_step():
    with pytest.raises(InvalidWorkflowError, match="outside"):
        parse_workflow("workflow w\nattr x : float\n")


def test_step_requires_involves():
    with pytest.raises(InvalidWorkflowError, match="involves"):
        parse_workflow("workflow w\nstep lonely\n")


def test_malformed_transition():
    with pytest.raises(InvalidWorkflowError, match="transition"):
        parse_workflow("workflow w\ntransition a to b\n")


def test_fail_clause_requires_state():
    with pytest.raises(InvalidWorkflowError):
        parse_workflow("workflow w\ntransition a -> b via s fail 0.5\n")


def test_comments_and_blank_lines_ignored():
    spec = parse_workflow("""
# leading comment
workflow commented   # not a trailing comment — name is 'commented'

material m key m initial s
step go involves m
transition s -> t via go
terminal t
""")
    assert spec.name == "commented"


def test_render_round_trips_the_genome_workflow():
    original = build_genome_spec()
    text = render_workflow(original)
    reparsed = parse_workflow(text)
    assert reparsed.name == original.name
    assert [m.class_name for m in reparsed.materials] == [
        m.class_name for m in original.materials
    ]
    assert [s.class_name for s in reparsed.steps] == [
        s.class_name for s in original.steps
    ]
    for original_step in original.steps:
        reparsed_step = reparsed.step(original_step.class_name)
        assert reparsed_step.attribute_names == original_step.attribute_names
        assert reparsed_step.involves_classes == original_step.involves_classes
        assert reparsed_step.creates == original_step.creates
    assert reparsed.transitions == original.transitions
    assert reparsed.terminal_states == original.terminal_states
    # and the reparsed spec validates into the same graph
    graph = load_workflow(text)
    assert graph.has_cycles()
