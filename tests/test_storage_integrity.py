"""Tests for the offline integrity checker (and with it, the store)."""

import pytest

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.benchmark import TINY, LabFlowWorkload
from repro.labbase import LabBase
from repro.storage import ObjectStoreSM, TexasSM
from repro.storage.integrity import verify


def test_fresh_store_verifies():
    sm = ObjectStoreSM()
    report = verify(sm)
    assert report.ok
    sm.close()


def test_populated_store_verifies():
    sm = TexasSM(buffer_pages=16)
    oids = [sm.allocate_write({"i": i, "pad": "x" * (i % 500)}) for i in range(300)]
    sm.allocate_write({"big": "B" * 25_000})
    for oid in oids[::3]:
        sm.delete(oid)
    for oid in oids[1::3]:
        sm.write(oid, {"rewritten": True})
    sm.commit()
    report = verify(sm)
    report.raise_if_bad()
    assert report.objects_checked > 0
    assert report.pages_checked > 0
    sm.close()


def test_full_benchmark_database_verifies(tmp_path):
    sm = ObjectStoreSM(path=str(tmp_path / "lab.db"), buffer_pages=32)
    db = LabBase(sm)
    LabFlowWorkload(db, TINY).run_all()
    verify(sm).raise_if_bad()
    sm.close()
    # and again after reopen
    sm2 = ObjectStoreSM(path=str(tmp_path / "lab.db"), buffer_pages=32)
    verify(sm2).raise_if_bad()
    sm2.close()


def test_verifier_detects_dangling_root():
    sm = ObjectStoreSM()
    oid = sm.allocate_write("x")
    sm.set_root("entry", oid)
    # corrupt deliberately: remove the object behind the root
    del sm._directory[oid]
    report = verify(sm)
    assert not report.ok
    assert any("I7" in problem for problem in report.problems)


def test_verifier_detects_orphan_slot():
    sm = ObjectStoreSM()
    oid = sm.allocate_write({"data": 1})
    # corrupt deliberately: drop the directory entry, leave the record
    del sm._directory[oid]
    report = verify(sm)
    assert any("I4" in problem for problem in report.problems)


def test_verifier_detects_double_reference():
    sm = ObjectStoreSM()
    first = sm.allocate_write("a")
    second = sm.allocate_write("b")
    sm._directory[second] = sm._directory[first]  # corrupt: shared location
    report = verify(sm)
    assert any("I3" in problem for problem in report.problems)


def test_raise_if_bad_raises_with_details():
    sm = ObjectStoreSM()
    oid = sm.allocate_write("x")
    sm.set_root("entry", oid)
    del sm._directory[oid]
    with pytest.raises(AssertionError, match="I7"):
        verify(sm).raise_if_bad()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    sizes=st.lists(st.integers(0, 8000), min_size=1, max_size=25),
    delete_every=st.integers(2, 5),
)
def test_random_churn_always_verifies(sizes, delete_every):
    """Any create/rewrite/delete churn leaves a consistent store."""
    sm = ObjectStoreSM(buffer_pages=8)
    oids = [sm.allocate_write("v" * n) for n in sizes]
    for index, oid in enumerate(oids):
        if index % delete_every == 0:
            sm.delete(oid)
        elif index % delete_every == 1:
            sm.write(oid, "w" * (sizes[index] // 2))
    sm.commit()
    verify(sm).raise_if_bad()
    sm.close()
