"""Unit tests for the oid allocator."""

import pytest

from repro.util.ids import OidAllocator


def test_first_id_is_start():
    assert OidAllocator().allocate() == 1
    assert OidAllocator(start=100).allocate() == 100


def test_ids_strictly_increase():
    alloc = OidAllocator()
    ids = [alloc.allocate() for _ in range(1000)]
    assert ids == sorted(ids)
    assert len(set(ids)) == 1000


def test_allocate_many_reserves_consecutive_range():
    alloc = OidAllocator()
    block = alloc.allocate_many(5)
    assert list(block) == [1, 2, 3, 4, 5]
    assert alloc.allocate() == 6


def test_allocate_many_zero_is_empty():
    alloc = OidAllocator()
    assert list(alloc.allocate_many(0)) == []
    assert alloc.allocate() == 1


def test_allocate_many_negative_rejected():
    with pytest.raises(ValueError):
        OidAllocator().allocate_many(-1)


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        OidAllocator(start=-1)


def test_restore_moves_forward_only():
    alloc = OidAllocator()
    alloc.allocate()
    alloc.allocate()
    alloc.restore(100)
    assert alloc.allocate() == 100
    alloc.restore(5)  # stale mark: ignored
    assert alloc.allocate() == 101


def test_high_water_reflects_next_id():
    alloc = OidAllocator()
    assert alloc.high_water == 1
    alloc.allocate()
    assert alloc.high_water == 2
