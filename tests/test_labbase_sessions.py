"""Tests for multi-client sessions (the concurrency usability gap)."""

import pytest

from repro.errors import ConcurrencyUnsupportedError, LabBaseError, LockError
from repro.labbase import LabBase, LabClock
from repro.labbase.sessions import SessionManager
from repro.storage import ObjectStoreSM, OStoreMM, TexasSM
from repro.storage.locks import LockMode


def _lab(sm):
    db = LabBase(sm)
    clock = LabClock()
    db.define_material_class("clone")
    db.define_step_class("s", ["a"], ["clone"])
    oid = db.create_material("clone", "c-1", clock.tick(), state="active")
    return db, clock, oid


def test_ostore_supports_many_sessions():
    db, clock, oid = _lab(ObjectStoreSM())
    manager = SessionManager(db)
    entry = manager.open_session("data-entry")
    reports = manager.open_session("reports")
    assert manager.open_sessions() == ["data-entry", "reports"]
    entry.close()
    reports.close()


def test_texas_refuses_second_session():
    db, clock, oid = _lab(TexasSM())
    manager = SessionManager(db)
    first = manager.open_session("only")
    with pytest.raises(ConcurrencyUnsupportedError):
        manager.open_session("second")
    first.close()
    # after closing, a new client may attach (serial reuse)
    manager.open_session("second").close()


def test_memory_store_has_no_session_support():
    db, _clock, _oid = _lab(OStoreMM())
    with pytest.raises(ConcurrencyUnsupportedError):
        SessionManager(db)


def test_readers_share_writers_conflict():
    db, clock, oid = _lab(ObjectStoreSM())
    manager = SessionManager(db)
    reader_a = manager.open_session("reader-a")
    reader_b = manager.open_session("reader-b")
    writer = manager.open_session("writer")

    db.record_step("s", clock.tick(), [oid], {"a": 1})
    # two shared readers coexist
    assert reader_a.most_recent(oid, "a") == 1
    assert reader_b.most_recent(oid, "a") == 1
    # a writer conflicts with the readers
    with pytest.raises(LockError):
        writer.record_step("s", clock.tick(), [oid], {"a": 2})
    # readers release -> the writer proceeds (the 1996 retry discipline)
    reader_a.release_locks()
    reader_b.release_locks()
    writer.record_step("s", clock.tick(), [oid], {"a": 2})
    writer.release_locks()
    assert db.most_recent(oid, "a") == 2


def test_writer_blocks_reader_until_release():
    db, clock, oid = _lab(ObjectStoreSM())
    manager = SessionManager(db)
    writer = manager.open_session("writer")
    reader = manager.open_session("reader")
    writer.set_state(oid, "busy", clock.tick())
    with pytest.raises(LockError):
        reader.most_recent(oid, "a") if db.has_attribute(oid, "a") else \
            reader.lock_material(oid)
    writer.release_locks()
    reader.lock_material(oid)  # now fine


def test_session_lifecycle_errors():
    db, clock, oid = _lab(ObjectStoreSM())
    manager = SessionManager(db)
    session = manager.open_session("s")
    with pytest.raises(LabBaseError, match="already open"):
        manager.open_session("s")
    session.close()
    session.close()  # idempotent
    with pytest.raises(LabBaseError, match="closed"):
        session.lock_material(oid)


def test_context_manager_releases():
    db, clock, oid = _lab(ObjectStoreSM())
    manager = SessionManager(db)
    with manager.open_session("ctx") as session:
        session.lock_material(oid, exclusive=True)
    # lock released on exit: another writer succeeds immediately
    with manager.open_session("next") as other:
        other.lock_material(oid, exclusive=True)


def _two_materials_on_distinct_pages(db, clock):
    """Create materials until two of them live on different pages.

    These locking scenarios need record geometry that stays put: the
    records must remain on the pages the sessions lock, so the stores
    under test open with ``codec="pickle"`` (pickle's looser packing
    leaves every page slack for in-place growth; the schema-aware codec
    packs materials so densely that the update inside ``record_step``
    would relocate the record to a page nobody locked).
    """
    sm = db.storage
    oids = [db.create_material("clone", f"m-{i}", clock.tick())
            for i in range(80)]
    first_page = sm._entry(oids[0])[0]
    for oid in oids[1:]:
        if sm._entry(oid)[0] != first_page:
            return oids[0], oid
    raise AssertionError("expected materials to span at least two pages")


def test_record_step_locks_in_oid_order_no_livelock():
    """Regression: two sessions locking [A, B] vs [B, A] used to grab
    their first material each, fail on the second, and leak the first —
    a livelock on retry.  Sorted acquisition makes the loser fail on its
    FIRST lock, holding nothing, so the winner's retry succeeds."""
    db, clock, _oid = _lab(ObjectStoreSM(codec="pickle"))
    a, b = _two_materials_on_distinct_pages(db, clock)
    manager = SessionManager(db)
    s1 = manager.open_session("s1")
    s2 = manager.open_session("s2")

    s1.record_step("s", clock.tick(), [a, b], {"a": 1})   # s1 holds both
    with pytest.raises(LockError):
        s2.record_step("s", clock.tick(), [b, a], {"a": 2})  # reversed order
    # the loser leaked nothing: it holds no pages at all
    assert db.storage.lock_manager.held_pages("s2") == set()
    # so the winner can keep going, and after release the loser's retry wins
    s1.record_step("s", clock.tick(), [b, a], {"a": 3})
    s1.release_locks()
    s2.record_step("s", clock.tick(), [b, a], {"a": 4})
    s2.release_locks()
    assert db.most_recent(a, "a") == 4


def test_failed_multi_lock_releases_only_newly_acquired():
    """A partial acquisition must give back what it just took — but not
    locks the session already held before the call."""
    db, clock, _oid = _lab(ObjectStoreSM(codec="pickle"))
    a, b = _two_materials_on_distinct_pages(db, clock)
    manager = SessionManager(db)
    s1 = manager.open_session("s1")
    s2 = manager.open_session("s2")

    s1.lock_material(a, exclusive=True)          # s1 pre-holds material a
    s2.lock_material(b, exclusive=True)          # s2 pre-holds material b
    held_before = db.storage.lock_manager.held_pages("s1")
    with pytest.raises(LockError):
        s1.record_step("s", clock.tick(), [a, b], {"a": 1})  # blocked on b
    # s1 keeps the lock it held before the failed call, gains nothing new
    assert db.storage.lock_manager.held_pages("s1") == held_before
    # and b's holder is untouched
    assert "s2" in db.storage.lock_manager.holders(
        db.storage._entry(b)[0]
    )


def test_failed_upgrade_downgrades_back_to_shared():
    """Regression (the lock-upgrade rollback leak): a session reading
    material A holds its page SHARED; its record_step on [A, B] upgrades
    A's page to EXCLUSIVE, then conflicts on B (held by another writer)
    and rolls back.  The upgrade used to be invisible to the rollback
    (acquire returned False for it), so A's page stayed EXCLUSIVE and a
    third client was wrongly refused SHARED access for the life of the
    process.  The rollback must downgrade A back to SHARED — not keep
    EXCLUSIVE, and not drop the pre-held SHARED lock either."""
    db, clock, _oid = _lab(ObjectStoreSM(codec="pickle"))
    a, b = _two_materials_on_distinct_pages(db, clock)
    manager = SessionManager(db)
    s1 = manager.open_session("s1")
    s2 = manager.open_session("s2")
    reader = manager.open_session("reader")

    s1.lock_material(a)                      # SHARED on a's page
    s2.lock_material(b, exclusive=True)      # the conflict source
    page_a = db.storage.pages_of(a)[0]
    with pytest.raises(LockError):
        s1.record_step("s", clock.tick(), [a, b], {"a": 1})
    # the failed call's upgrade was undone: s1 is back to SHARED
    assert db.storage.lock_manager.holders(page_a)["s1"] is LockMode.SHARED
    # so another reader is admitted (the pre-fix leak refused this)
    reader.lock_material(a)
    # and s1 still holds what it held before the failed call
    assert page_a in db.storage.lock_manager.held_pages("s1")


def test_exception_close_invalidates_buffered_writes():
    """A session dying mid-unit-of-work must not strand locks or dirty
    cache state: its buffered writes are dropped, its locks released."""
    db, clock, oid = _lab(ObjectStoreSM())
    # Pre-create the target state's set so the doomed unit below only
    # *writes* existing records (allocation is eager and out of scope).
    db.set_state(oid, "busy", clock.tick())
    db.set_state(oid, "active", clock.tick())
    manager = SessionManager(db)
    survivor = manager.open_session("survivor")
    db.begin()  # unit-of-work buffering: writes stay in the object cache
    with pytest.raises(RuntimeError):
        with manager.open_session("doomed") as doomed:
            doomed.set_state(oid, "busy", clock.tick())
            assert db.cache.dirty_objects > 0
            raise RuntimeError("client died mid-unit")
    # the dying session's buffered write was invalidated, not drained
    assert db.cache.dirty_objects == 0
    # and its locks are gone: a writer proceeds immediately
    survivor.set_state(oid, "done", clock.tick())
    survivor.release_locks()
    db.commit()
    assert db.material(oid)["state"] == "done"


def test_clean_close_drains_buffered_writes():
    """A clean close mid-transaction hands the session's dirty cache
    entries to the storage manager instead of stranding them."""
    db, clock, oid = _lab(ObjectStoreSM())
    manager = SessionManager(db)
    db.begin()
    with manager.open_session("worker") as worker:
        worker.set_state(oid, "busy", clock.tick())
        assert db.cache.dirty_objects > 0
    assert db.cache.dirty_objects == 0  # drained by the close, not stranded
    db.commit()
    assert db.material(oid)["state"] == "busy"


def test_record_step_preserves_caller_involves_order():
    """Sorting is for lock acquisition only; the stored step must keep
    the caller's involves order."""
    db, clock, _oid = _lab(ObjectStoreSM(codec="pickle"))
    a, b = _two_materials_on_distinct_pages(db, clock)
    manager = SessionManager(db)
    with manager.open_session("s") as session:
        step_oid = session.record_step("s", clock.tick(), [b, a], {"a": 1})
    assert db.step(step_oid)["involves"] == [b, a]


def test_same_session_may_rewrite_its_own_lock():
    db, clock, oid = _lab(ObjectStoreSM())
    manager = SessionManager(db)
    with manager.open_session("solo") as session:
        session.record_step("s", clock.tick(), [oid], {"a": 1})
        session.record_step("s", clock.tick(), [oid], {"a": 2})  # no self-conflict
        assert session.most_recent(oid, "a") == 2
