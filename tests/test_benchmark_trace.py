"""Tests for workload trace recording and replay."""

import io

import pytest

from repro.benchmark import TINY, LabFlowWorkload
from repro.benchmark.trace import Trace, TracingServer, replay
from repro.errors import BenchmarkError
from repro.labbase import LabBase, LabClock
from repro.storage import ObjectStoreSM, OStoreMM


def _traced_lab():
    db = LabBase(OStoreMM())
    server = TracingServer(db)
    clock = LabClock()
    server.define_material_class("clone")
    server.define_step_class("s", ["a", "b"], ["clone"])
    oid = server.create_material("clone", "c-1", clock.tick(), state="active")
    server.record_step("s", clock.tick(), [oid], {"a": 1})
    server.set_state(oid, "done", clock.tick())
    return db, server, clock


def test_recording_captures_logical_operations():
    _db, server, _clock = _traced_lab()
    counts = server.trace.operations()
    assert counts == {
        "define_material_class": 1,
        "define_step_class": 1,
        "create_material": 1,
        "record_step": 1,
        "set_state": 1,
    }
    step_event = [e for e in server.trace.events if e["op"] == "record_step"][0]
    assert step_event["involves"] == [["clone", "c-1"]]  # names, not oids


def test_replay_reproduces_the_database():
    _db, server, _clock = _traced_lab()
    target = LabBase(OStoreMM())
    counts = replay(server.trace, target)
    assert counts["record_step"] == 1
    oid = target.lookup("clone", "c-1")
    assert target.most_recent(oid, "a") == 1
    assert target.state_of(oid) == "done"


def test_dump_load_round_trip():
    _db, server, _clock = _traced_lab()
    buffer = io.StringIO()
    server.trace.dump(buffer)
    buffer.seek(0)
    loaded = Trace.load(buffer)
    assert loaded.events == server.trace.events


def test_load_rejects_garbage():
    with pytest.raises(BenchmarkError, match="line 1"):
        Trace.load(io.StringIO("not json\n"))


def test_replay_rejects_unknown_op():
    trace = Trace()
    trace.append("explode")
    with pytest.raises(BenchmarkError, match="unknown trace op"):
        replay(trace, LabBase(OStoreMM()))


def test_tracing_unknown_oid_rejected():
    db = LabBase(OStoreMM())
    server = TracingServer(db)
    server.define_material_class("clone")
    server.define_step_class("s", ["a"], ["clone"])
    # material created *behind the proxy's back*
    oid = db.create_material("clone", "sneaky", 1)
    with pytest.raises(BenchmarkError, match="not created through"):
        server.record_step("s", 2, [oid], {"a": 1})


def test_versioned_steps_replay_by_attribute_set():
    db = LabBase(OStoreMM())
    server = TracingServer(db)
    clock = LabClock()
    server.define_material_class("clone")
    old = server.define_step_class("s", ["a"], ["clone"])
    server.define_step_class("s", ["a", "b"], ["clone"])  # evolve
    oid = server.create_material("clone", "c-1", clock.tick())
    server.record_step("s", clock.tick(), [oid], {"a": 1},
                       version_id=old.version_id)

    target = LabBase(OStoreMM())
    replay(server.trace, target)
    target_oid = target.lookup("clone", "c-1")
    step = target.material_history(target_oid)[0][1]
    version = target.catalog.step_version(step["class_version"])
    assert version.attribute_set == frozenset({"a"})


def test_full_workload_records_and_replays_identically(tmp_path):
    """Record the TINY stream; replay onto a page store; same database."""
    source_db = LabBase(OStoreMM())
    traced = TracingServer(source_db)
    workload = LabFlowWorkload(traced, TINY)
    workload.run_all()
    assert len(traced.trace) > 100

    # round-trip the trace through a file, like a shipped benchmark trace
    path = tmp_path / "stream.trace"
    with open(path, "w") as fp:
        traced.trace.dump(fp)
    with open(path) as fp:
        loaded = Trace.load(fp)

    target_db = LabBase(ObjectStoreSM(buffer_pages=64))
    replay(loaded, target_db)

    assert target_db.catalog.material_counts == source_db.catalog.material_counts
    assert target_db.catalog.step_counts == source_db.catalog.step_counts
    assert target_db.sets.state_census() == source_db.sets.state_census()
    for oid, record in source_db.iter_materials():
        target_oid = target_db.lookup(record["class_name"], record["key"])
        assert (
            target_db.current_attributes(target_oid)
            == source_db.current_attributes(oid)
        ), record["key"]
