"""Tests for Architecture (A) and the wrapper contract."""

import pytest

from repro.arch import DirectServer, is_benchmark_complete
from repro.errors import (
    DuplicateKeyError,
    UnknownAttributeError,
    UnknownClassError,
    UnknownMaterialError,
)
from repro.labbase import LabBase
from repro.storage import OStoreMM


@pytest.fixture
def direct():
    server = DirectServer(OStoreMM())
    server.define_material_class("clone")
    server.define_step_class("s", ["quality", "sequence"])
    return server


def test_direct_satisfies_wrapper_contract(direct):
    assert is_benchmark_complete(direct)


def test_labbase_satisfies_wrapper_contract():
    assert is_benchmark_complete(LabBase(OStoreMM()))


def test_crud_and_queries(direct):
    oid = direct.create_material("clone", "c-1", 1, state="arrived")
    assert direct.lookup("clone", "c-1") == oid
    direct.record_step("s", 10, [oid], {"quality": 0.5})
    direct.record_step("s", 20, [oid], {"quality": 0.9})
    direct.record_step("s", 15, [oid], {"quality": 0.7})
    assert direct.most_recent(oid, "quality") == 0.9
    assert direct.in_state("arrived") == [oid]
    assert direct.count_materials("clone") == 1
    assert direct.count_steps("s") == 3
    history = direct.material_history(oid)
    assert [step["valid_time"] for _oid, step in history] == [20, 15, 10]


def test_error_cases(direct):
    with pytest.raises(UnknownClassError):
        direct.create_material("plasmid", "p", 1)
    with pytest.raises(UnknownClassError):
        direct.record_step("nope", 1, [])
    oid = direct.create_material("clone", "c-1", 1)
    with pytest.raises(DuplicateKeyError):
        direct.create_material("clone", "c-1", 2)
    with pytest.raises(UnknownMaterialError):
        direct.lookup("clone", "missing")
    with pytest.raises(UnknownAttributeError):
        direct.most_recent(oid, "quality")


def test_report(direct):
    oid = direct.create_material("clone", "c-1", 1, state="arrived")
    direct.record_step("s", 2, [oid], {"quality": 1.0})
    rows = direct.report([oid], ["quality", "sequence"])
    assert rows[0]["quality"] == 1.0 and rows[0]["sequence"] is None


def test_direct_and_labbase_agree_on_results():
    """Same operations, same answers — different mechanics only."""
    operations = [
        ("create", "c-1"), ("step", "c-1", 10, 0.1),
        ("create", "c-2"), ("step", "c-2", 30, 0.3),
        ("step", "c-1", 20, 0.2), ("step", "c-1", 5, 0.05),
    ]

    direct = DirectServer(OStoreMM())
    direct.define_material_class("clone")
    direct.define_step_class("s", ["quality"])
    labbase = LabBase(OStoreMM())
    labbase.define_material_class("clone")
    labbase.define_step_class("s", ["quality"], ["clone"])

    for op in operations:
        if op[0] == "create":
            direct.create_material("clone", op[1], 0, state="active")
            labbase.create_material("clone", op[1], 0, state="active")
        else:
            _kind, key, valid_time, quality = op
            direct.record_step("s", valid_time, [direct.lookup("clone", key)],
                               {"quality": quality})
            labbase.record_step("s", valid_time, [labbase.lookup("clone", key)],
                                {"quality": quality})

    for key in ("c-1", "c-2"):
        assert direct.most_recent(direct.lookup("clone", key), "quality") == \
            labbase.most_recent(labbase.lookup("clone", key), "quality")
    assert len(direct.in_state("active")) == len(labbase.in_state("active"))
    assert direct.count_steps("s") == labbase.count_steps("s")


def test_transactions_delegate(direct):
    direct.begin()
    direct.create_material("clone", "tx", 1)
    direct.abort()
    with pytest.raises(UnknownMaterialError):
        direct.lookup("clone", "tx")
