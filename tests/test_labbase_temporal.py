"""Unit tests for the valid-time clock."""

import pytest

from repro.errors import BenchmarkError
from repro.labbase.temporal import LabClock, newer, within


def test_clock_starts_at_zero_and_ticks():
    clock = LabClock()
    assert clock.now == 0
    assert clock.tick() == 1
    assert clock.tick(5) == 6
    assert clock.now == 6


def test_clock_custom_start():
    assert LabClock(start=100).tick() == 101


def test_clock_never_moves_backwards():
    clock = LabClock()
    with pytest.raises(BenchmarkError):
        clock.tick(0)
    with pytest.raises(BenchmarkError):
        clock.tick(-3)


def test_backdated_clamps_at_epoch():
    clock = LabClock()
    clock.tick(10)
    assert clock.backdated(3) == 7
    assert clock.backdated(100) == 0
    with pytest.raises(BenchmarkError):
        clock.backdated(-1)


def test_backdated_does_not_advance():
    clock = LabClock()
    clock.tick(5)
    clock.backdated(2)
    assert clock.now == 5


def test_newer_and_within():
    assert newer(10, 5)
    assert not newer(5, 10)
    assert not newer(5, 5)
    assert within(5, 0, 10)
    assert within(0, 0, 10) and within(10, 0, 10)
    assert not within(11, 0, 10)
