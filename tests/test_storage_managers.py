"""Behavioural tests run against every storage-manager version.

The ``any_sm`` fixture (conftest) parametrizes over all five server
versions, enforcing the paper's discipline: the application-visible
behaviour must be identical, only the mechanics differ.
"""

import pytest

from repro.errors import (
    StorageClosedError,
    TransactionError,
    UnknownOidError,
    UnknownSegmentError,
)
from repro.storage import ObjectStoreSM, TexasSM, DEFAULT_SEGMENT
from repro.storage.page import PAGE_SIZE


def test_crud_round_trip(any_sm):
    oid = any_sm.allocate_write({"a": 1, "b": [1, 2, 3]})
    assert any_sm.read(oid) == {"a": 1, "b": [1, 2, 3]}
    any_sm.write(oid, {"a": 2})
    assert any_sm.read(oid) == {"a": 2}
    any_sm.delete(oid)
    assert not any_sm.exists(oid)


def test_oids_are_unique_and_positive(any_sm):
    oids = [any_sm.allocate_write(i) for i in range(100)]
    assert len(set(oids)) == 100
    assert all(oid > 0 for oid in oids)


def test_read_unknown_oid(any_sm):
    with pytest.raises(UnknownOidError):
        any_sm.read(999_999)


def test_write_unknown_oid(any_sm):
    with pytest.raises(UnknownOidError):
        any_sm.write(999_999, {})


def test_delete_unknown_oid(any_sm):
    with pytest.raises(UnknownOidError):
        any_sm.delete(999_999)


def test_roots(any_sm):
    oid = any_sm.allocate_write("root object")
    any_sm.set_root("main", oid)
    assert any_sm.get_root("main") == oid
    assert any_sm.get_root("absent") is None


def test_root_must_reference_stored_object(any_sm):
    with pytest.raises(UnknownOidError):
        any_sm.set_root("bad", 424242)


def test_objects_are_isolated_from_caller_mutation(any_sm):
    record = {"list": [1, 2]}
    oid = any_sm.allocate_write(record)
    record["list"].append(3)  # caller mutates after store
    assert any_sm.read(oid) == {"list": [1, 2]}
    fetched = any_sm.read(oid)
    fetched["list"].append(99)  # mutating a read copy
    assert any_sm.read(oid) == {"list": [1, 2]}


def test_large_object_round_trip(any_sm):
    blob = {"seq": "ACGT" * 10_000}  # ~40 KB, far beyond one page
    oid = any_sm.allocate_write(blob)
    assert any_sm.read(oid) == blob
    any_sm.write(oid, {"seq": "small now"})
    assert any_sm.read(oid) == {"seq": "small now"}


def test_update_grow_and_shrink(any_sm):
    oid = any_sm.allocate_write("x")
    for size in (10, 3000, 100, 20_000, 1):
        any_sm.write(oid, "y" * size)
        assert any_sm.read(oid) == "y" * size


def test_transaction_commit(any_sm):
    any_sm.begin()
    oid = any_sm.allocate_write([1])
    any_sm.commit()
    assert any_sm.read(oid) == [1]


def test_transaction_abort_undoes_everything(any_sm):
    keep = any_sm.allocate_write("keep")
    any_sm.commit()
    any_sm.begin()
    new = any_sm.allocate_write("new")
    any_sm.write(keep, "modified")
    any_sm.abort()
    assert any_sm.read(keep) == "keep"
    assert not any_sm.exists(new)


def test_abort_undoes_delete(any_sm):
    oid = any_sm.allocate_write("precious")
    any_sm.commit()
    any_sm.begin()
    any_sm.delete(oid)
    any_sm.abort()
    assert any_sm.read(oid) == "precious"


def test_nested_begin_rejected(any_sm):
    any_sm.begin()
    with pytest.raises(TransactionError):
        any_sm.begin()
    any_sm.commit()


def test_abort_without_begin_rejected(any_sm):
    with pytest.raises(TransactionError):
        any_sm.abort()


def test_oids_iteration_sees_all_objects(any_sm):
    created = {any_sm.allocate_write(i) for i in range(20)}
    assert created <= set(any_sm.oids())
    assert any_sm.object_count() >= 20


def test_closed_store_refuses_everything(any_sm):
    oid = any_sm.allocate_write("x")
    any_sm.close()
    with pytest.raises(StorageClosedError):
        any_sm.read(oid)
    any_sm.close()  # idempotent


def test_close_inside_transaction_rejected(any_sm):
    any_sm.begin()
    with pytest.raises(TransactionError):
        any_sm.close()
    any_sm.commit()


def test_stats_count_operations(any_sm):
    before = any_sm.stats.snapshot()
    oid = any_sm.allocate_write("stat me")
    any_sm.read(oid)
    delta = any_sm.stats.delta(before)
    assert delta["objects_written"] == 1
    assert delta["objects_read"] == 1
    assert delta["bytes_written"] > 0


def test_segment_support_matches_declaration(any_sm):
    name = any_sm.create_segment("hot", "hot data")
    if any_sm.supports_segments:
        assert name == "hot"
        assert "hot" in any_sm.segment_names()
    else:
        assert name == DEFAULT_SEGMENT
    # placement with the returned name always works
    oid = any_sm.allocate_write("data", segment=name)
    assert any_sm.read(oid) == "data"


# -- persistence (page stores only) ---------------------------------------


def test_reopen_preserves_everything(persistent_sm, tmp_path):
    sm = persistent_sm
    sm.create_segment("hot")
    oids = [sm.allocate_write({"i": i}, segment="hot" if sm.supports_segments else None)
            for i in range(50)]
    big = sm.allocate_write({"blob": "B" * 30_000})
    sm.set_root("entry", oids[0])
    sm.commit()
    path = sm._disk.path
    sm.close()

    reopened = type(sm)(path=path)
    assert reopened.get_root("entry") == oids[0]
    assert reopened.read(oids[17]) == {"i": 17}
    assert reopened.read(big) == {"blob": "B" * 30_000}
    # allocator resumes past old ids
    fresh = reopened.allocate_write("fresh")
    assert fresh > max(oids + [big])
    reopened.close()


def test_size_is_page_multiple_plus_meta(persistent_sm):
    sm = persistent_sm
    for i in range(100):
        sm.allocate_write({"i": i, "pad": "p" * 64})
    sm.commit()
    size = sm.size_bytes()
    assert size > PAGE_SIZE
    assert (size - sm._disk.size_bytes) > 0  # metadata counted


def test_checkpoint_then_size_stable(persistent_sm):
    sm = persistent_sm
    sm.allocate_write("x")
    sm.checkpoint()
    assert sm.size_bytes() == sm.size_bytes()


# -- the size comparison (E6's mechanism) ----------------------------------


def test_texas_database_larger_than_ostore(tmp_path):
    """Power-of-two cells must cost real space vs dense packing."""
    records = [{"k": i, "pad": "x" * (40 + (i * 13) % 300)} for i in range(2000)]
    sizes = {}
    for cls, name in ((ObjectStoreSM, "ostore"), (TexasSM, "texas")):
        sm = cls(path=str(tmp_path / f"{name}.db"), buffer_pages=64)
        for record in records:
            sm.allocate_write(record)
        sm.commit()
        sizes[name] = sm.size_bytes()
        sm.close()
    ratio = sizes["texas"] / sizes["ostore"]
    assert 1.2 < ratio < 2.2, f"expected Texas ~1.45x larger, got {ratio:.2f}"


def test_swizzle_work_charged_on_texas_faults(tmp_path):
    sm = TexasSM(path=str(tmp_path / "t.db"), buffer_pages=4)
    oids = [sm.allocate_write({"i": i, "pad": "y" * 200}) for i in range(300)]
    sm.commit()
    sm.drop_buffer()
    for oid in oids[:50]:
        sm.read(oid)
    assert sm.stats.major_faults > 0
    assert sm.stats.swizzle_operations > 0
    sm.close()


# -- the public pages_of API -----------------------------------------------


def test_pages_of_small_object(any_sm):
    oid = any_sm.allocate_write({"a": 1})
    pages = any_sm.pages_of(oid)
    if any_sm.persistent:
        assert len(pages) == 1
    else:
        assert pages == []  # main-memory stores hold objects in no page


def test_pages_of_large_object_lists_every_chunk(any_sm):
    oid = any_sm.allocate_write({"blob": "B" * 30_000})
    pages = any_sm.pages_of(oid)
    if any_sm.persistent:
        assert len(pages) > 1  # chunked across pages
        assert pages == [page for page in pages]  # storage (chunk) order
    else:
        assert pages == []


def test_pages_of_unknown_oid(any_sm):
    with pytest.raises(UnknownOidError):
        any_sm.pages_of(424_242)


# -- segment-aware read-ahead (A5's mechanism) ------------------------------


def test_cold_sequential_scan_prefetches(persistent_sm):
    """A cold scan in storage order must be fed by the prefetcher: most
    pages arrive staged (prefetch_hits), not as major faults, and the
    absorbed faults account exactly for the difference."""
    sm = persistent_sm
    oids = [sm.allocate_write({"i": i, "pad": "x" * 120}) for i in range(600)]
    sm.commit()
    sm.drop_buffer()
    before_faults = sm.stats.major_faults
    for oid in oids:
        sm.read(oid)
    faults = sm.stats.major_faults - before_faults
    assert sm.stats.pages_prefetched > 0
    assert sm.stats.prefetch_hits > faults
    assert sm.stats.io_batches > 0


def test_readahead_off_never_prefetches(tmp_path):
    sm = ObjectStoreSM(path=str(tmp_path / "off.db"), buffer_pages=16,
                       readahead_pages=0)
    oids = [sm.allocate_write({"i": i, "pad": "x" * 120}) for i in range(600)]
    sm.commit()
    sm.drop_buffer()
    for oid in oids:
        sm.read(oid)
    assert sm.stats.pages_prefetched == 0
    assert sm.stats.prefetch_hits == 0
    assert sm.stats.io_batches == 0
    sm.close()


def test_readahead_stays_inside_the_faulting_segment(tmp_path):
    """OStore read-ahead must not drag a neighbouring segment's pages in:
    scanning one segment stages only that segment's pages."""
    sm = ObjectStoreSM(path=str(tmp_path / "seg.db"), buffer_pages=256)
    sm.create_segment("hot")
    sm.create_segment("cold")
    hot, cold = [], []
    for i in range(150):  # interleave so the segments' pages alternate
        hot.append(sm.allocate_write({"h": i, "pad": "h" * 150}, segment="hot"))
        cold.append(sm.allocate_write({"c": i, "pad": "c" * 150}, segment="cold"))
    sm.commit()
    sm.drop_buffer()
    for oid in hot:
        sm.read(oid)
    cold_pages = {page for oid in cold for page in sm.pages_of(oid)}
    staged_or_resident = set(sm._pool.resident_ids()) | {
        page_id for page_id in cold_pages if sm._pool.is_staged(page_id)
    }
    # No cold page was speculatively transferred by the hot scan.
    assert not (cold_pages & staged_or_resident)
    sm.close()


def test_swizzle_cost_identical_with_readahead(tmp_path):
    """Texas swizzles at *demand* time, so read-ahead absorbs faults but
    never changes the swizzling bill."""
    swizzles = {}
    for window in (0, 8):
        sm = TexasSM(path=str(tmp_path / f"t{window}.db"), buffer_pages=16,
                     readahead_pages=window)
        oids = [sm.allocate_write({"i": i, "pad": "y" * 200}) for i in range(300)]
        sm.commit()
        sm.drop_buffer()
        for oid in oids:
            sm.read(oid)
        swizzles[window] = sm.stats.swizzle_operations
        sm.close()
    assert swizzles[0] == swizzles[8]


def test_redundant_checkpoints_are_skipped(tmp_path):
    """checkpoint_every=1 on a read-mostly phase must stop re-writing the
    unchanged metadata blob (and stop advancing the epoch)."""
    sm = ObjectStoreSM(path=str(tmp_path / "ck.db"), checkpoint_every=1)
    oids = [sm.allocate_write({"i": i}) for i in range(20)]
    sm.commit()
    written_after_load = sm.stats.meta_bytes_written
    assert written_after_load > 0
    epoch = sm.commit_epoch
    for _ in range(5):  # read-only commits: nothing to persist
        for oid in oids[:5]:
            sm.read(oid)
        sm.commit()
    assert sm.stats.meta_bytes_written == written_after_load
    assert sm.commit_epoch == epoch
    sm.write(oids[0], {"i": -1})
    sm.commit()  # a real change lands a real checkpoint
    assert sm.stats.meta_bytes_written > written_after_load
    assert sm.commit_epoch > epoch
    sm.close()
    # and the skipped checkpoints cost nothing in durability
    reopened = ObjectStoreSM(path=str(tmp_path / "ck.db"))
    assert reopened.read(oids[0]) == {"i": -1}
    assert reopened.verify().ok
    reopened.close()


def test_unchanged_reopen_close_skips_meta_rewrite(tmp_path):
    import os

    sm = ObjectStoreSM(path=str(tmp_path / "ro.db"))
    sm.allocate_write({"v": 1})
    sm.close()
    meta_path = str(tmp_path / "ro.db") + ".meta"
    mtime = os.path.getmtime(meta_path)
    reopened = ObjectStoreSM(path=str(tmp_path / "ro.db"))
    reopened.object_count()
    reopened.close()  # nothing changed: the blob must not be rewritten
    assert os.path.getmtime(meta_path) == mtime
    assert reopened.stats.meta_bytes_written == 0
