"""Property-based tests for LabBase's central invariants.

The paper's core data structure claim: the most-recent index always
agrees with a full history scan under any insertion order (valid times
arrive out of order) and any retraction pattern.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.labbase import LabBase
from repro.storage import OStoreMM

_streams = st.lists(
    st.tuples(
        st.integers(0, 50),                # valid time (ties + disorder likely)
        st.sampled_from(("a", "b", "c")),  # attribute
        st.integers(0, 999),               # value
    ),
    min_size=1,
    max_size=30,
)


def _build(stream):
    db = LabBase(OStoreMM())
    db.define_material_class("m")
    db.define_step_class("s", ["a", "b", "c"], ["m"])
    oid = db.create_material("m", "key", 0)
    for valid_time, attr, value in stream:
        db.record_step("s", valid_time, [oid], {attr: value})
    return db, oid


def _scan_expectation(stream, attribute):
    """Reference semantics: max valid time; ties -> later insert."""
    best = None
    for position, (valid_time, attr, value) in enumerate(stream):
        if attr != attribute:
            continue
        if best is None or (valid_time, position) >= (best[0], best[1]):
            best = (valid_time, position, value)
    return None if best is None else best[2]


@settings(max_examples=60, deadline=None)
@given(stream=_streams)
def test_index_agrees_with_reference_semantics(stream):
    db, oid = _build(stream)
    for attribute in ("a", "b", "c"):
        expected = _scan_expectation(stream, attribute)
        if expected is None:
            assert not db.has_attribute(oid, attribute)
        else:
            assert db.most_recent(oid, attribute) == expected


@settings(max_examples=40, deadline=None)
@given(stream=_streams)
def test_index_on_and_off_agree(stream):
    """Ablation A1's correctness precondition: both paths agree."""
    indexed_db, indexed_oid = _build(stream)
    scan_db = LabBase(OStoreMM(), use_most_recent_index=False)
    scan_db.define_material_class("m")
    scan_db.define_step_class("s", ["a", "b", "c"], ["m"])
    scan_oid = scan_db.create_material("m", "key", 0)
    for valid_time, attr, value in stream:
        scan_db.record_step("s", valid_time, [scan_oid], {attr: value})

    for attribute in ("a", "b", "c"):
        indexed_has = indexed_db.has_attribute(indexed_oid, attribute)
        assert indexed_has == scan_db.has_attribute(scan_oid, attribute)
        if indexed_has:
            # equal valid times may be resolved to different steps by the
            # two paths only if values differ at the same (time, position),
            # which cannot happen; so values must agree.
            assert indexed_db.most_recent(indexed_oid, attribute) == \
                scan_db.most_recent(scan_oid, attribute)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(stream=_streams, retract=st.lists(st.integers(0, 29), max_size=5))
def test_retraction_keeps_index_consistent(stream, retract):
    db, oid = _build(stream)
    step_oids = [step_oid for step_oid, _ in db.material_history(oid)]
    removed = set()
    for index in retract:
        if index < len(step_oids) and step_oids[index] not in removed:
            db.retract_step(step_oids[index])
            removed.add(step_oids[index])
    # after retraction, the index must equal a fresh history scan
    material = db.material(oid)
    for attribute in ("a", "b", "c"):
        scanned = db.history.scan_most_recent(material, attribute)
        if scanned is None:
            assert not db.has_attribute(oid, attribute)
        else:
            assert db.most_recent(oid, attribute) == scanned[2]
    assert db.history_length(oid) == len(step_oids) - len(removed)


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(
        st.text(st.characters(whitelist_categories=("Ll", "Nd")), min_size=1, max_size=12),
        min_size=1, max_size=30, unique=True,
    )
)
def test_key_index_total_recall(keys):
    """Every created key is found; no phantom keys are found."""
    db = LabBase(OStoreMM())
    db.define_material_class("m")
    oids = {key: db.create_material("m", key, 0) for key in keys}
    for key, oid in oids.items():
        assert db.lookup("m", key) == oid
    assert not db.material_exists("m", "definitely-not-a-key")
    assert db.count_materials("m") == len(keys)
