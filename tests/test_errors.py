"""Contract tests for the exception hierarchy."""

import inspect

import pytest

from repro import errors
from repro.arch.wrapper import WorkflowDataServer, is_benchmark_complete


def _exception_classes():
    return [
        obj for _name, obj in inspect.getmembers(errors, inspect.isclass)
        if issubclass(obj, Exception)
    ]


def test_every_library_exception_derives_from_repro_error():
    for cls in _exception_classes():
        assert issubclass(cls, errors.ReproError), cls


def test_subsystem_branches():
    assert issubclass(errors.PageOverflowError, errors.StorageError)
    assert issubclass(errors.UnknownOidError, errors.StorageError)
    assert issubclass(errors.LockError, errors.StorageError)
    assert issubclass(errors.DuplicateKeyError, errors.LabBaseError)
    assert issubclass(errors.UnknownClassError, errors.SchemaError)
    assert issubclass(errors.ParseError, errors.QueryError)
    assert issubclass(errors.InstantiationError, errors.EvaluationError)
    assert issubclass(errors.TransitionError, errors.WorkflowError)
    assert issubclass(errors.ConfigError, errors.BenchmarkError)


def test_structured_errors_carry_context():
    unknown = errors.UnknownOidError(42)
    assert unknown.oid == 42 and "42" in str(unknown)

    duplicate = errors.DuplicateKeyError("clone", "c-1")
    assert duplicate.class_name == "clone" and duplicate.key == "c-1"

    missing = errors.UnknownAttributeError("material 7", "quality")
    assert missing.attribute == "quality"

    lex = errors.LexError("bad char", 3, 9)
    assert lex.line == 3 and lex.column == 9 and "line 3" in str(lex)

    parse = errors.ParseError("oops", 2, 5)
    assert "line 2" in str(parse)
    bare = errors.ParseError("oops")
    assert "line" not in str(bare)


def test_catching_the_base_class_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.PageOverflowError("full")
    with pytest.raises(errors.ReproError):
        raise errors.InstantiationError("length/2")


# -- the wrapper contract is checkable, both ways ---------------------------


class _NotAServer:
    def lookup(self, class_name, key):
        return 0


def test_incomplete_server_fails_the_contract():
    assert not is_benchmark_complete(_NotAServer())
    assert not isinstance(object(), WorkflowDataServer)
