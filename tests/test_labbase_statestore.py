"""Unit tests for material sets and workflow states."""

import pytest

from repro.errors import StateError
from repro.labbase import model
from repro.labbase.catalog import Catalog
from repro.labbase.statestore import StateStore, state_set_name
from repro.storage import OStoreMM


def _setup():
    sm = OStoreMM()
    catalog = Catalog(sm, None)
    return sm, catalog, StateStore(sm, catalog, None)


def test_ensure_set_creates_once():
    _sm, catalog, sets = _setup()
    first = sets.ensure_set("cohort")
    second = sets.ensure_set("cohort")
    assert first == second
    assert "cohort" in catalog.set_directory


def test_membership_operations():
    _sm, _catalog, sets = _setup()
    sets.add_member("s", 10)
    sets.add_member("s", 11)
    sets.add_member("s", 10)  # duplicate ignored
    assert sets.members("s") == [10, 11]
    assert sets.cardinality("s") == 2
    assert sets.remove_member("s", 10)
    assert not sets.remove_member("s", 10)
    assert sets.members("s") == [11]


def test_members_of_absent_set_is_empty():
    _sm, _catalog, sets = _setup()
    assert sets.members("ghost") == []
    assert sets.cardinality("ghost") == 0
    assert not sets.remove_member("ghost", 1)


def test_enter_state_moves_between_sets():
    _sm, _catalog, sets = _setup()
    material = model.make_material("clone", "c", 0)
    sets.enter_state(7, material, "arrived", 1)
    assert material["state"] == "arrived"
    assert sets.in_state("arrived") == [7]
    sets.enter_state(7, material, "waiting", 2)
    assert sets.in_state("arrived") == []
    assert sets.in_state("waiting") == [7]
    assert material["state_since"] == 2


def test_leave_state_retracts():
    _sm, _catalog, sets = _setup()
    material = model.make_material("clone", "c", 0)
    sets.enter_state(7, material, "arrived", 1)
    old = sets.leave_state(7, material)
    assert old == "arrived"
    assert material["state"] is None
    assert sets.in_state("arrived") == []


def test_leave_state_without_state_raises():
    _sm, _catalog, sets = _setup()
    material = model.make_material("clone", "c", 0)
    with pytest.raises(StateError):
        sets.leave_state(7, material)


def test_state_census():
    _sm, _catalog, sets = _setup()
    a = model.make_material("clone", "a", 0)
    b = model.make_material("clone", "b", 0)
    sets.enter_state(1, a, "arrived", 1)
    sets.enter_state(2, b, "arrived", 1)
    sets.enter_state(2, b, "done", 2)
    sets.ensure_set("not-a-state")  # excluded from census
    assert sets.state_census() == {"arrived": 1, "done": 1}


def test_state_set_naming_convention():
    assert state_set_name("arrived") == "state:arrived"


def test_sets_persist_via_catalog(tmp_path):
    from repro.storage import ObjectStoreSM

    sm = ObjectStoreSM(path=str(tmp_path / "s.db"))
    catalog = Catalog(sm, None)
    sets = StateStore(sm, catalog, None)
    sets.add_member("cohort", 42)
    sm.close()

    sm2 = ObjectStoreSM(path=str(tmp_path / "s.db"))
    catalog2 = Catalog(sm2, None)
    sets2 = StateStore(sm2, catalog2, None)
    assert sets2.members("cohort") == [42]
    sm2.close()
