"""Unit tests for the Table 1 record layouts and most-recent logic."""

import pytest

from repro.labbase import model


def test_step_record_shape():
    step = model.make_step(3, 17, [("quality", 0.9), ("sequence", "ACGT")], [5, 6])
    assert step["kind"] == model.KIND_STEP
    assert step["class_version"] == 3
    assert step["valid_time"] == 17
    assert step["involves"] == [5, 6]
    assert model.step_result(step, "quality") == 0.9
    assert model.step_attributes(step) == ["quality", "sequence"]


def test_step_result_missing_attribute_raises_keyerror():
    step = model.make_step(1, 1, [("a", 1)], [])
    with pytest.raises(KeyError):
        model.step_result(step, "b")


def test_step_result_distinguishes_stored_none_from_missing():
    step = model.make_step(1, 1, [("a", None)], [])
    assert model.step_result(step, "a") is None
    with pytest.raises(KeyError):
        model.step_result(step, "z")


def test_material_record_shape():
    material = model.make_material("clone", "c-1", 5)
    assert material["kind"] == model.KIND_MATERIAL
    assert material["history_head"] == model.NIL
    assert material["history_len"] == 0
    assert material["recent"] == {}
    assert material["state"] is None


def test_update_recent_installs_and_replaces():
    material = model.make_material("clone", "c", 0)
    assert model.update_recent(material, "q", 5, 100, 0.5)
    assert model.recent_entry(material, "q")[:2] == [5, 100]
    assert model.update_recent(material, "q", 9, 101, 0.8)
    assert model.recent_entry(material, "q")[0] == 9


def test_update_recent_rejects_older_valid_time():
    """Out-of-order entry: an older valid time never displaces newer."""
    material = model.make_material("clone", "c", 0)
    model.update_recent(material, "q", 10, 1, "new")
    assert not model.update_recent(material, "q", 4, 2, "stale")
    entry = model.recent_entry(material, "q")
    assert entry[0] == 10 and entry[3] == "new"


def test_update_recent_tie_goes_to_later_insert():
    material = model.make_material("clone", "c", 0)
    model.update_recent(material, "q", 10, 1, "first")
    assert model.update_recent(material, "q", 10, 2, "second")
    assert model.recent_entry(material, "q")[3] == "second"


def test_inline_policy():
    assert model.is_inlineable(5)
    assert model.is_inlineable(0.5)
    assert model.is_inlineable(None)
    assert model.is_inlineable("short")
    assert not model.is_inlineable("x" * 200)
    assert not model.is_inlineable([1, 2, 3])
    assert not model.is_inlineable({"a": 1})


def test_update_recent_marks_large_values_not_inlined():
    material = model.make_material("clone", "c", 0)
    model.update_recent(material, "seq", 1, 55, "A" * 1000)
    entry = model.recent_entry(material, "seq")
    assert entry[2] is False and entry[3] is None
    assert entry[1] == 55  # the step to fetch from


def test_bucket_for_is_stable_and_in_range():
    assert model.bucket_for("clone-000123") == model.bucket_for("clone-000123")
    for key in ("a", "zz", "clone-1", "tc-999999"):
        assert 0 <= model.bucket_for(key) < model.KEY_INDEX_BUCKETS


def test_bucket_distribution_not_degenerate():
    buckets = {model.bucket_for(f"clone-{i:06d}") for i in range(500)}
    assert len(buckets) > model.KEY_INDEX_BUCKETS // 2


def test_material_set_record():
    record = model.make_material_set("state:arrived")
    assert record["kind"] == model.KIND_SET
    assert record["members"] == []


def test_table_1_names_all_three_storage_classes():
    assert "sm_step" in model.TABLE_1
    assert "sm_material" in model.TABLE_1
    assert "material_set" in model.TABLE_1
