"""Tests for chronicle (process re-engineering) queries."""

import pytest

from repro.errors import UnknownClassError
from repro.labbase import LabBase
from repro.labbase.chronicle import Chronicle
from repro.storage import OStoreMM
from repro.util.rng import DeterministicRng
from repro.workflow import WorkflowEngine, build_genome_workflow


@pytest.fixture(scope="module")
def lab():
    db = LabBase(OStoreMM())
    engine = WorkflowEngine(db, build_genome_workflow(), DeterministicRng(31))
    engine.install_schema()
    for _ in range(8):
        engine.create_material("clone")
    engine.pump(1_000_000)  # run dry
    return db, engine, Chronicle(db)


def test_step_profiles_cover_all_executed_steps(lab):
    db, engine, chronicle = lab
    profiles = {p.class_name: p for p in chronicle.step_profiles()}
    assert set(profiles) == set(engine.counters.per_step)
    for name, count in engine.counters.per_step.items():
        assert profiles[name].executions == count


def test_step_profile_fields(lab):
    _db, _engine, chronicle = lab
    profile = next(
        p for p in chronicle.step_profiles() if p.class_name == "determine_sequence"
    )
    assert profile.materials_touched > 0
    assert profile.last_valid_time >= profile.first_valid_time
    assert profile.mean_results_per_step == 3.0  # sequence, quality, read_length
    assert profile.throughput > 0


def test_rework_detects_resequencing(lab):
    db, engine, chronicle = lab
    report = chronicle.rework("determine_sequence")
    assert report.materials_processed == db.count_materials("tclone")
    # re-queues happened iff some material was sequenced twice
    requeues = engine.counters.failures - (
        db.count_steps("associate_tclone") - 8
    )
    assert (report.materials_reworked > 0) == (requeues > 0)
    assert 0.0 <= report.rework_rate <= 1.0
    assert report.max_runs_on_one_material >= 1


def test_rework_unknown_class(lab):
    _db, _engine, chronicle = lab
    with pytest.raises(UnknownClassError):
        chronicle.rework("nonexistent")


def test_cycle_time_and_statistics(lab):
    db, _engine, chronicle = lab
    done = db.in_state("clone_done")
    stats = chronicle.cycle_time_statistics(done)
    assert stats["count"] == len(done)
    assert 0 < stats["min"] <= stats["mean"] <= stats["max"]
    assert chronicle.cycle_time(done[0]) > 0


def test_cycle_time_of_fresh_material_is_zero():
    db = LabBase(OStoreMM())
    db.define_material_class("m")
    oid = db.create_material("m", "x", 1)
    chronicle = Chronicle(db)
    assert chronicle.cycle_time(oid) == 0
    assert chronicle.cycle_time_statistics([oid])["count"] == 0


def test_steps_between_window(lab):
    db, _engine, chronicle = lab
    oid = db.in_state("clone_done")[0]
    history = db.material_history(oid)
    times = sorted(step["valid_time"] for _o, step in history)
    window = chronicle.steps_between(oid, times[0], times[0])
    assert len(window) >= 1
    everything = chronicle.steps_between(oid, times[0], times[-1])
    assert len(everything) == len(history)
    assert chronicle.steps_between(oid, times[-1] + 1, times[-1] + 10) == []


def test_funnel_is_monotone_along_the_pipeline(lab):
    _db, _engine, chronicle = lab
    funnel = chronicle.funnel(
        "clone",
        ["receive_clone", "assemble_sequence", "blast_search", "incorporate"],
    )
    counts = [count for _name, count in funnel]
    assert counts[0] == 8
    assert all(a >= b for a, b in zip(counts, counts[1:]))


def test_funnel_respects_material_class(lab):
    _db, _engine, chronicle = lab
    funnel = dict(chronicle.funnel("gel", ["receive_clone", "read_gel"]))
    assert funnel["receive_clone"] == 0  # receive_clone never touches gels
    assert funnel["read_gel"] > 0


def test_value_distribution(lab):
    db, _engine, chronicle = lab
    dist = chronicle.value_distribution("tclone", "quality")
    assert dist["count"] > 0
    assert 0.0 <= dist["min"] <= dist["mean"] <= dist["max"] <= 1.0
    # non-numeric attributes are excluded rather than crashing
    seq_dist = chronicle.value_distribution("tclone", "sequence")
    assert seq_dist["count"] == 0
    # is-a rollup: clone includes tclone values
    rolled = chronicle.value_distribution("clone", "quality")
    assert rolled["count"] >= dist["count"]
