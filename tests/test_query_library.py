"""Tests for the standard view library over a real genome-lab run."""

import pytest

from repro.labbase import LabBase
from repro.query.library import new_program_with_library
from repro.storage import OStoreMM
from repro.util.rng import DeterministicRng
from repro.workflow import WorkflowEngine, build_genome_workflow


@pytest.fixture(scope="module")
def lab():
    db = LabBase(OStoreMM())
    engine = WorkflowEngine(db, build_genome_workflow(), DeterministicRng(2))
    engine.install_schema()
    for _ in range(5):
        engine.create_material("clone")
    engine.pump(1_000_000)
    return db, engine, new_program_with_library(db)


def test_derived_from_finds_clone_tclone_lineage(lab):
    db, _engine, program = lab
    pairs = program.solutions("derived_from(P, C), material(tclone, K, C).")
    assert len(pairs) == db.count_materials("tclone", include_subclasses=False)
    for row in pairs:
        parent = db.material(row["P"])
        assert parent["class_name"] == "clone"


def test_ancestor_material_is_transitive(lab):
    db, _engine, program = lab
    # gels descend from tclones which descend from clones
    gel_row = program.first("material(gel, K, G).")
    ancestors = program.solutions(f"ancestor_material(A, {gel_row['G']}).")
    classes = {db.material(row["A"])["class_name"] for row in ancestors}
    assert classes == {"clone", "tclone"}


def test_processed_by(lab):
    _db, _engine, program = lab
    clone_row = program.first("material(clone, 'clone-000001', M).")
    steps = {r["C"] for r in program.solve(f"processed_by({clone_row['M']}, C).")}
    assert "receive_clone" in steps and "incorporate" in steps


def test_reworked_matches_engine_failures(lab):
    db, engine, program = lab
    requeues = engine.counters.failures - (
        db.count_steps("associate_tclone") - 5
    )
    reworked = program.solutions(
        "material(tclone, K, M), reworked(M, determine_sequence)."
    )
    reworked_count = len({row["M"] for row in reworked})
    assert (reworked_count > 0) == (requeues > 0)


def test_first_last_and_cycle_time(lab):
    db, _engine, program = lab
    from repro.labbase import Chronicle

    clone_row = program.first("material(clone, 'clone-000002', M).")
    oid = clone_row["M"]
    row = program.first(f"cycle_time({oid}, D).")
    assert row["D"] == Chronicle(db).cycle_time(oid)
    first = program.first(f"first_event({oid}, T).")["T"]
    last = program.first(f"last_event({oid}, T).")["T"]
    assert first + row["D"] == last


def test_state_population_matches_census(lab):
    db, _engine, program = lab
    for state, population in db.sets.state_census().items():
        row = program.first(f"state_population({state}, N).")
        assert row["N"] == population, state


def test_class_in_state(lab):
    db, _engine, program = lab
    rows = program.solutions("class_in_state(gel, gel_done, M).")
    assert len(rows) == db.count_materials("gel")


def test_value_thresholds(lab):
    db, _engine, program = lab
    good = program.solutions(
        "material(tclone, K, M), value_at_least(M, quality, 0.5)."
    )
    bad = program.solutions(
        "material(tclone, K, M), value_below(M, quality, 0.5)."
    )
    with_quality = program.solutions(
        "material(tclone, K, M), has_value(M, quality)."
    )
    assert len(good) + len(bad) == len(with_quality)
    assert len(with_quality) == db.count_materials("tclone", include_subclasses=False)
