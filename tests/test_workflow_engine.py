"""Unit tests for the workflow execution engine."""

import pytest

from repro.labbase import LabBase
from repro.storage import OStoreMM
from repro.util.rng import DeterministicRng
from repro.workflow import WorkflowEngine, WorkflowGraph, default_value_factory
from repro.workflow.genome import (
    ARRIVED,
    CLONE_DONE,
    WAITING_FOR_TCLONE,
    build_genome_workflow,
)
from repro.workflow.spec import (
    AttributeSpec,
    MaterialSpec,
    StepSpec,
    Transition,
    ValueKind,
    WorkflowSpec,
)


def _engine(seed=3):
    db = LabBase(OStoreMM())
    graph = build_genome_workflow()
    engine = WorkflowEngine(db, graph, DeterministicRng(seed))
    engine.install_schema()
    return db, engine


def test_install_schema_registers_everything():
    db, _engine_ = _engine()
    assert set(db.catalog.material_classes) == {"clone", "tclone", "gel"}
    assert "determine_sequence" in db.catalog.step_classes


def test_create_material_enters_initial_state():
    db, engine = _engine()
    oid = engine.create_material("clone")
    assert db.state_of(oid) == ARRIVED
    assert db.material(oid)["key"].startswith("clone-")


def test_keys_are_sequential_per_class():
    _db, engine = _engine()
    keys = [engine.next_key("clone") for _ in range(3)]
    assert keys == ["clone-000001", "clone-000002", "clone-000003"]
    assert engine.next_key("tclone") == "tc-000001"


def test_advance_records_step_and_moves_state():
    db, engine = _engine()
    oid = engine.create_material("clone")
    event = engine.advance(oid)
    assert event is not None
    assert event.step_class == "receive_clone"
    assert event.from_state == ARRIVED and event.to_state == WAITING_FOR_TCLONE
    assert db.state_of(oid) == WAITING_FOR_TCLONE
    assert db.history_length(oid) == 1
    assert db.has_attribute(oid, "insert_length")


def test_advance_on_terminal_material_returns_none():
    db, engine = _engine()
    oid = engine.create_material("clone")
    events = engine.run_to_completion(oid)
    assert db.state_of(oid) == CLONE_DONE
    assert engine.advance(oid) is None
    assert events[-1].step_class == "incorporate"


def test_run_to_completion_creates_tclones():
    db, engine = _engine()
    oid = engine.create_material("clone")
    events = engine.run_to_completion(oid)
    created = [c for event in events for c in event.created]
    assert created, "associate_tclone must create tclones"
    assert all(db.material(c)["class_name"] == "tclone" for c in created)
    # every created material is involved in its creating step
    for event in events:
        step = db.step(event.step_oid)
        for child in event.created:
            assert child in step["involves"]


def test_counters_track_activity():
    _db, engine = _engine()
    oid = engine.create_material("clone")
    engine.run_to_completion(oid)
    counters = engine.counters
    assert counters.steps >= 5
    assert counters.completed >= 1
    assert counters.per_step["receive_clone"] == 1


def test_pump_executes_across_states():
    db, engine = _engine()
    for _ in range(3):
        engine.create_material("clone")
    executed = engine.pump(1000)
    assert executed > 0
    # pump to quiescence: all clones done
    assert len(db.in_state(CLONE_DONE)) == 3


def test_pump_respects_budget():
    _db, engine = _engine()
    engine.create_material("clone")
    assert engine.pump(2) == 2


def test_deterministic_given_seed():
    db_a, engine_a = _engine(seed=5)
    db_b, engine_b = _engine(seed=5)
    for engine in (engine_a, engine_b):
        engine.create_material("clone")
        engine.pump(50)
    assert engine_a.counters.per_step == engine_b.counters.per_step
    assert db_a.count_materials("tclone") == db_b.count_materials("tclone")


def test_failure_edge_requeues():
    """With fail probability 1.0 the material must bounce back."""
    spec = WorkflowSpec(
        name="bounce",
        materials=[MaterialSpec("m", "m", initial_state="trying")],
        steps=[StepSpec("attempt", (AttributeSpec("n", ValueKind.INTEGER),), ("m",))],
        transitions=[
            Transition(
                "attempt", "trying", "done",
                fail_state="trying", fail_probability=1.0,
            )
        ],
        terminal_states=("done",),
    )
    db = LabBase(OStoreMM())
    engine = WorkflowEngine(db, WorkflowGraph(spec), DeterministicRng(1))
    engine.install_schema()
    oid = engine.create_material("m")
    event = engine.advance(oid)
    assert event.failed
    assert db.state_of(oid) == "trying"
    assert engine.counters.failures == 1
    with pytest.raises(Exception):
        engine.run_to_completion(oid, max_steps=10)  # never terminates


def test_default_value_factory_covers_all_kinds():
    rng = DeterministicRng(2)
    step = StepSpec("s", (), ("m",))
    for kind in ValueKind:
        attribute = AttributeSpec("x", kind)
        value = default_value_factory(step, attribute, "key-1", rng)
        assert value is not None
