"""Tests for the repro.analysis invariant linter.

The fixture corpus under ``tests/lint_fixtures/<RULE>/`` drives the
per-rule checks: ``good_*``/``support_*`` files must be clean for their
rule, every ``bad_*`` file must trip it.  The remaining tests pin the
engine-level guarantees — deterministic reports, self-application over
the shipped tree, and regression traps that re-introduce previously
fixed violations into real source and expect the linter to object.
"""

import json
import os

import pytest

from repro.analysis import main as lint_main
from repro.analysis.core import Project, SourceModule, run_rules
from repro.analysis.main import collect_paths, default_root, load_project
from repro.analysis.rules import ALL_RULES, rules_by_id

FIXTURES = os.path.join(os.path.dirname(__file__), "lint_fixtures")

RULE_IDS = tuple(rule.id for rule in ALL_RULES)


def _fixture_project(rule_id):
    paths = collect_paths([os.path.join(FIXTURES, rule_id)])
    assert paths, f"no fixtures for {rule_id}"
    project, errors = load_project(paths)
    assert not errors, errors
    return project


# -- fixture corpus ---------------------------------------------------------


def test_every_rule_has_fixture_coverage():
    for rule_id in RULE_IDS:
        names = sorted(os.listdir(os.path.join(FIXTURES, rule_id)))
        good = [n for n in names if n.startswith("good_")]
        bad = [n for n in names if n.startswith("bad_")]
        assert good, f"{rule_id}: no passing fixture"
        assert len(bad) >= 2, f"{rule_id}: need at least two failing fixtures"


@pytest.mark.parametrize("rule_id", RULE_IDS)
def test_rule_against_fixture_corpus(rule_id):
    project = _fixture_project(rule_id)
    findings = run_rules(project, rules_by_id([rule_id]))
    flagged_files = {os.path.basename(f.path) for f in findings}
    for module in project:
        name = os.path.basename(module.path)
        if name.startswith("bad_"):
            assert name in flagged_files, f"{rule_id} missed {name}"
        else:
            assert name not in flagged_files, (
                f"{rule_id} false positive in {name}: "
                + "; ".join(f.render() for f in findings if f.path == module.path)
            )
    for finding in findings:
        assert finding.rule == rule_id


def test_findings_carry_positions_and_messages():
    findings = run_rules(_fixture_project("LF01"), rules_by_id(["LF01"]))
    assert findings
    for finding in findings:
        assert finding.line >= 1 and finding.col >= 1
        assert finding.message
        rendered = finding.render()
        assert f":{finding.line}:" in rendered and "LF01" in rendered


# -- suppression ------------------------------------------------------------


def test_inline_suppression_silences_one_rule():
    source = (
        "# module: repro.storage.suppressed\n"
        "def tidy(store):\n"
        "    try:\n"
        "        store.flush()\n"
        "    except Exception:  # lint: ignore[LF06]\n"
        "        pass\n"
    )
    project = Project([SourceModule("suppressed.py", source)])
    assert run_rules(project, rules_by_id(["LF06"])) == []


def test_standalone_comment_suppresses_next_line():
    source = (
        "# module: repro.storage.suppressed\n"
        "def tidy(store):\n"
        "    try:\n"
        "        store.flush()\n"
        "    # lint: ignore[LF06]\n"
        "    except Exception:\n"
        "        pass\n"
    )
    project = Project([SourceModule("suppressed.py", source)])
    assert run_rules(project, rules_by_id(["LF06"])) == []


def test_suppression_is_per_rule():
    source = (
        "# module: repro.storage.suppressed\n"
        "import os\n"
        "def tidy(store, fd):\n"
        "    try:\n"
        "        os.write(fd, b'x')  # lint: ignore[LF06]\n"
        "    except Exception:\n"
        "        pass\n"
    )
    project = Project([SourceModule("suppressed.py", source)])
    rules = {f.rule for f in run_rules(project, rules_by_id(["LF01", "LF06"]))}
    assert rules == {"LF01", "LF06"}  # ignore[LF06] on the os.write line is inert


# -- self-application -------------------------------------------------------


def test_shipped_tree_is_clean(capsys):
    assert lint_main([]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_json_report_is_deterministic(capsys):
    assert lint_main(["--format", "json"]) == 0
    first = capsys.readouterr().out
    assert lint_main(["--format", "json"]) == 0
    second = capsys.readouterr().out
    assert first == second
    payload = json.loads(first)
    assert payload["version"] == 1
    assert payload["checked_files"] > 0
    assert payload["findings"] == []


def test_json_schema_on_findings(capsys):
    bad = os.path.join(FIXTURES, "LF01", "bad_os_write.py")
    assert lint_main([bad, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["checked_files"] == 1
    assert sum(payload["counts"].values()) == len(payload["findings"])
    for finding in payload["findings"]:
        assert set(finding) == {"rule", "path", "line", "col", "message"}


# -- regression traps -------------------------------------------------------


def _shipped_source(*parts):
    return open(os.path.join(default_root(), *parts), encoding="utf-8").read()


def test_reintroduced_sessions_reach_in_is_caught():
    source = _shipped_source("labbase", "sessions.py") + (
        "\n\ndef peek(manager):\n"
        "    return manager._directory\n"
    )
    project = Project(
        [SourceModule("src/repro/labbase/sessions.py", source)]
    )
    findings = run_rules(project, rules_by_id(["LF03"]))
    assert any("_directory" in f.message for f in findings)


def test_reintroduced_unsorted_set_iteration_is_caught():
    source = _shipped_source("storage", "disk.py") + (
        "\n\ndef flush_unsorted(dirty_ids):\n"
        "    pending = set(dirty_ids)\n"
        "    for page_id in pending:\n"
        "        pass\n"
    )
    project = Project([SourceModule("src/repro/storage/disk.py", source)])
    findings = run_rules(project, rules_by_id(["LF02"]))
    assert any("hash order" in f.message for f in findings)


def test_reintroduced_pagefile_construction_is_caught():
    source = _shipped_source("storage", "buffer.py") + (
        "\n\ndef side_file(path):\n"
        "    return PageFile(path)\n"
    )
    project = Project([SourceModule("src/repro/storage/buffer.py", source)])
    findings = run_rules(project, rules_by_id(["LF01"]))
    assert any(f.rule == "LF01" for f in findings)


# -- CLI plumbing -----------------------------------------------------------


def test_unknown_rule_id_is_an_error(capsys):
    assert lint_main(["--rules", "LF99"]) == 2
    assert "unknown rule" in capsys.readouterr().err


def test_unparsable_input_is_an_error(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def half(:\n")
    assert lint_main([str(broken)]) == 2
    assert "broken.py" in capsys.readouterr().err


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in out


def test_rule_subset_runs_only_named_rules():
    bad_dir = os.path.join(FIXTURES, "LF06")
    paths = collect_paths([bad_dir])
    project, _ = load_project(paths)
    findings = run_rules(project, rules_by_id(["LF01"]))
    assert findings == []  # LF06 fixtures are clean under LF01


# -- LF05 ResourceUsage leg --------------------------------------------------


def test_unmerged_resource_usage_field_is_caught():
    source = (
        "# module: repro.util.timing\n"
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class ResourceUsage:\n"
        "    elapsed: float = 0.0\n"
        "    dropped: float = 0.0\n"
        "    def __add__(self, other):\n"
        "        return ResourceUsage(elapsed=self.elapsed + other.elapsed)\n"
    )
    project = Project([SourceModule("timing.py", source)])
    findings = run_rules(project, rules_by_id(["LF05"]))
    assert any("dropped" in f.message for f in findings)
    assert not any("elapsed" in f.message for f in findings)
