"""Unit tests for the tokenizer."""

import pytest

from repro.errors import LexError
from repro.query.lexer import ATOM, NUMBER, PUNCT, STRING, VAR, tokenize


def _types(text):
    return [t.type for t in tokenize(text)][:-1]  # drop END


def _values(text):
    return [t.value for t in tokenize(text)][:-1]


def test_atoms_and_variables():
    assert _types("foo Bar _baz") == [ATOM, VAR, VAR]


def test_colon_in_atom_names():
    """The paper's test:sequencing_ok must lex as one atom."""
    tokens = tokenize("test:sequencing_ok(M)")
    assert tokens[0].type == ATOM
    assert tokens[0].value == "test:sequencing_ok"


def test_numbers():
    assert _values("42 3.25 0") == [42, 3.25, 0]
    assert isinstance(_values("42")[0], int)
    assert isinstance(_values("3.25")[0], float)


def test_strings_and_quoted_atoms():
    tokens = tokenize("\"hello world\" 'clone-001'")
    assert tokens[0].type == STRING and tokens[0].value == "hello world"
    assert tokens[1].type == ATOM and tokens[1].value == "clone-001"


def test_escapes_in_strings():
    assert _values(r'"a\nb"') == ["a\nb"]
    assert _values(r"'it\'s'") == ["it's"]


def test_operators_longest_match():
    assert _values("X =< Y") == ["X", "=<", "Y"]
    assert _values("X \\== Y") == ["X", "\\==", "Y"]
    assert _values("a <- b :- c ?- d") == ["a", "<-", "b", ":-", "c", "?-", "d"]


def test_end_of_clause_dot_vs_float_dot():
    values = _values("p(1.5).")
    assert values == ["p", "(", 1.5, ")", "."]


def test_comments_ignored():
    values = _values("a % line comment\nb /* block\ncomment */ c")
    assert values == ["a", "b", "c"]


def test_unterminated_comment_raises():
    with pytest.raises(LexError, match="comment"):
        tokenize("/* never closed")


def test_unterminated_string_raises():
    with pytest.raises(LexError, match="unterminated"):
        tokenize('"no close')


def test_unexpected_character_reports_position():
    with pytest.raises(LexError) as info:
        tokenize("abc\n  @")
    assert info.value.line == 2
    assert info.value.column == 3


def test_list_punctuation():
    assert _values("[1, 2 | T]") == ["[", 1, ",", 2, "|", "T", "]"]


def test_line_numbers_tracked():
    tokens = tokenize("a\nb\n  c")
    assert [t.line for t in tokens[:-1]] == [1, 2, 3]
