"""The crash matrix: kill the store at every write point, then audit.

For each persistent server version the same deterministic workload runs
with a fault injector that crashes the store at write point N — page
writes and metadata writes both count, and ``BufferPool.flush_dirty``
writes in page-id order, so the sequence is identical on every run.
N sweeps the whole workload (every write point), with and without
torn-write simulation.

After each crash the store is reopened plain and must satisfy exactly
one of:

* opening itself fails loudly (a detectably damaged store), or
* ``verify()`` passes and the contents equal the state at the store's
  last durable checkpoint, bit for bit, or
* ``verify()`` reports the damage, and ``recover()`` repairs the store
  to a verifiable state in which every surviving object holds a value
  the workload actually wrote — never a torn or invented one.

What is forbidden is the fourth outcome: a store that *claims* to be
healthy but silently disagrees with any state the application committed.

The matrix runs with batched I/O at its default (read-ahead on, commits
vectored): ``FaultyPageFile.write_pages`` decomposes every vectored
transfer into per-page write points, so ``crash_after_writes=N`` names
the same crash whether commits batch or not — which the write-point
equality test below pins directly.

Set ``CRASH_MATRIX_STRIDE=k`` to test every k-th write point (CI smoke);
the default sweeps all of them.
"""

import os
import random

import pytest

from repro.errors import InjectedCrashError, StorageError
from repro.storage import (
    FaultInjector,
    ObjectCache,
    ObjectStoreSM,
    OStoreMM,
    TexasSM,
    TexasTCSM,
    TexasMM,
)
from repro.storage.registry import backends

N_COMMITS = 25

# Every registered backend that declares crash-matrix support sweeps
# the matrix — the capability flag, not a hand-kept list, decides.
PERSISTENT_CLASSES = [info.cls for info in backends(crash_matrix=True)]


def _stride() -> int:
    return max(1, int(os.environ.get("CRASH_MATRIX_STRIDE", "1")))


def _workload(sm, snapshots, value_history):
    """Deterministic mixed workload: N_COMMITS commits of churn.

    After every successful commit the full live state is recorded in
    ``snapshots`` under the store's checkpoint epoch; both caller-owned
    dicts survive the injected crash that aborts this function.
    """
    rng = random.Random(42)
    live: dict[int, object] = {}

    def remember(oid, value):
        live[oid] = value
        value_history.setdefault(oid, []).append(value)

    for commit_no in range(N_COMMITS):
        for _ in range(rng.randrange(1, 4)):
            action = rng.random()
            if action < 0.55 or not live:
                if rng.random() < 0.15:
                    # large: chunks across multiple pages
                    value = {"big": "x" * 9000, "n": commit_no}
                else:
                    value = {"n": commit_no, "pad": "p" * rng.randrange(200)}
                remember(sm.allocate_write(value), value)
            elif action < 0.80:
                oid = rng.choice(sorted(live))
                value = {"rw": commit_no, "pad": "q" * rng.randrange(3000)}
                sm.write(oid, value)
                remember(oid, value)
            else:
                oid = rng.choice(sorted(live))
                sm.delete(oid)
                del live[oid]
        sm.commit()
        snapshots[sm.commit_epoch] = dict(live)


def _workload_cached(sm, snapshots, value_history):
    """The same churn driven through a transactional object cache.

    Each commit block runs as one unit of work: repeat writes to an oid
    coalesce and the survivors are serialized at commit, in oid order.
    Intermediate values never reach a page, but every value that *can*
    reach a page is in ``value_history``, so the recovery audit's
    no-invented-values rule applies unchanged.
    """
    rng = random.Random(42)
    cache = ObjectCache(sm, capacity=64)
    live: dict[int, object] = {}

    def remember(oid, value):
        live[oid] = value
        value_history.setdefault(oid, []).append(value)

    for commit_no in range(N_COMMITS):
        cache.begin()
        for _ in range(rng.randrange(1, 4)):
            action = rng.random()
            if action < 0.55 or not live:
                if rng.random() < 0.15:
                    value = {"big": "x" * 9000, "n": commit_no}
                else:
                    value = {"n": commit_no, "pad": "p" * rng.randrange(200)}
                remember(cache.allocate_write(value), value)
            elif action < 0.80:
                oid = rng.choice(sorted(live))
                value = {"rw": commit_no, "pad": "q" * rng.randrange(3000)}
                cache.write(oid, value)
                remember(oid, value)
            else:
                oid = rng.choice(sorted(live))
                cache.delete(oid)
                del live[oid]
        cache.commit()
        snapshots[sm.commit_epoch] = dict(live)


def _count_write_points(cls, tmp_path, workload=_workload) -> int:
    """Run the workload once, never crashing, and count its writes."""
    injector = FaultInjector()  # counting mode
    path = os.path.join(tmp_path, "count.db")
    sm = cls(path=path, checkpoint_every=1, fault_injector=injector)
    workload(sm, {}, {})
    total = injector.writes_seen  # workload only: close() not counted
    sm.close()
    return total


def _audit_after_crash(cls, path, snapshots, value_history):
    """Reopen a crashed store and enforce the three legal outcomes."""
    try:
        reopened = cls(path=path)
    except StorageError:
        return  # outcome 1: loud failure at open
    try:
        checkpoint_epoch = reopened.commit_epoch
        report = reopened.verify()
        if report.ok:
            # outcome 2: healthy store ⟹ exactly the checkpoint state
            expected = snapshots.get(checkpoint_epoch, {})
            actual = {oid: reopened.read(oid) for oid in reopened.oids()}
            assert actual == expected, (
                f"silent corruption: verify() passed but contents differ "
                f"from checkpoint epoch {checkpoint_epoch}"
            )
        else:
            # outcome 3: damage was detected; repair must converge and
            # every survivor must hold a value that was really written
            reopened.recover()
            reopened.verify().raise_if_bad()
            for oid in reopened.oids():
                value = reopened.read(oid)
                assert value in value_history.get(oid, []), (
                    f"recovery invented a value for oid {oid}: {value!r}"
                )
    finally:
        reopened.close()


@pytest.mark.parametrize("cls", PERSISTENT_CLASSES)
@pytest.mark.parametrize("torn", [False, True], ids=["lost", "torn"])
def test_crash_matrix(cls, torn, tmp_path):
    total = _count_write_points(cls, tmp_path)
    assert total > N_COMMITS  # sanity: at least one write point per commit
    for crash_at in range(0, total, _stride()):
        path = os.path.join(tmp_path, f"crash_{int(torn)}_{crash_at}.db")
        injector = FaultInjector(crash_after_writes=crash_at, torn_write=torn)
        sm = cls(path=path, checkpoint_every=1, fault_injector=injector)
        snapshots: dict[int, dict] = {}
        value_history: dict[int, list] = {}
        with pytest.raises(InjectedCrashError):
            _workload(sm, snapshots, value_history)
        _audit_after_crash(cls, path, snapshots, value_history)


@pytest.mark.parametrize("cls", PERSISTENT_CLASSES)
@pytest.mark.parametrize("torn", [False, True], ids=["lost", "torn"])
def test_crash_matrix_with_object_cache(cls, torn, tmp_path):
    """The reopen trichotomy must survive coalesced commit writes."""
    total = _count_write_points(cls, tmp_path, workload=_workload_cached)
    assert total > N_COMMITS
    for crash_at in range(0, total, _stride()):
        path = os.path.join(tmp_path, f"ccrash_{int(torn)}_{crash_at}.db")
        injector = FaultInjector(crash_after_writes=crash_at, torn_write=torn)
        sm = cls(path=path, checkpoint_every=1, fault_injector=injector)
        snapshots: dict[int, dict] = {}
        value_history: dict[int, list] = {}
        with pytest.raises(InjectedCrashError):
            _workload_cached(sm, snapshots, value_history)
        _audit_after_crash(cls, path, snapshots, value_history)


@pytest.mark.parametrize("cls", PERSISTENT_CLASSES)
def test_cached_workload_without_faults_is_clean(cls, tmp_path):
    """Uninterrupted cached workload closes and reopens checkpoint-exact."""
    path = os.path.join(tmp_path, "cached_clean.db")
    sm = cls(path=path, checkpoint_every=1)
    snapshots: dict[int, dict] = {}
    _workload_cached(sm, snapshots, {})
    final_epoch = sm.commit_epoch
    sm.close()
    reopened = cls(path=path)
    reopened.verify().raise_if_bad()
    actual = {oid: reopened.read(oid) for oid in reopened.oids()}
    assert actual == snapshots[final_epoch]
    reopened.close()


@pytest.mark.parametrize("cls", PERSISTENT_CLASSES)
def test_workload_without_faults_is_clean(cls, tmp_path):
    """The same workload, uninterrupted, closes and reopens verifiably."""
    path = os.path.join(tmp_path, "clean.db")
    sm = cls(path=path, checkpoint_every=1)
    snapshots: dict[int, dict] = {}
    _workload(sm, snapshots, {})
    final_epoch = sm.commit_epoch
    sm.close()
    reopened = cls(path=path)
    reopened.verify().raise_if_bad()
    actual = {oid: reopened.read(oid) for oid in reopened.oids()}
    assert actual == snapshots[final_epoch]
    reopened.close()


@pytest.mark.parametrize("cls", [OStoreMM, TexasMM])
def test_memstore_crash_semantics(cls):
    """Main-memory stores advertise no durability: a crash loses all.

    Their verify()/recover() must still honour the common API so the
    crash-matrix driver treats every server version uniformly — and a
    'reopened' store (a fresh instance) is trivially consistent: empty.
    """
    sm = cls()
    assert sm.persistent is False
    for i in range(10):
        sm.allocate_write({"i": i})
    sm.commit()
    report = sm.verify()
    assert report.ok
    assert sm.recover() == {
        "dropped_objects": 0, "dropped_roots": 0, "vacuumed_slots": 0,
    }
    # crash: the instance is simply gone; a new one is empty & consistent
    reopened = cls()
    assert reopened.object_count() == 0
    assert reopened.verify().ok


@pytest.mark.parametrize("cls", PERSISTENT_CLASSES)
def test_write_points_and_files_identical_with_and_without_batching(cls, tmp_path):
    """Batching must not move a single write point or disk byte.

    The fault injector's crash schedule is meaningful only if write
    point N is the same physical write with vectored commits on or off;
    the decomposition in ``FaultyPageFile.write_pages`` guarantees it,
    and byte-identical database files prove nothing was reordered.
    """
    counts: dict[int, int] = {}
    contents: dict[int, dict[str, bytes]] = {}
    for window in (0, 8):
        injector = FaultInjector()  # counting mode, never crashes
        directory = os.path.join(tmp_path, f"wp{window}")
        os.makedirs(directory)
        path = os.path.join(directory, "db.pages")
        sm = cls(path=path, checkpoint_every=1, fault_injector=injector,
                 readahead_pages=window)
        _workload(sm, {}, {})
        counts[window] = injector.writes_seen
        sm.close()
        contents[window] = {
            name: open(os.path.join(directory, name), "rb").read()
            for name in sorted(os.listdir(directory))
        }
    assert counts[0] == counts[8], "batching changed the write-point count"
    assert contents[0] == contents[8], "batching changed the disk bytes"
