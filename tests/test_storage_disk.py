"""Unit tests for the page file and metadata side file."""

import os

import pytest

from repro.errors import StorageError
from repro.storage.disk import PageFile
from repro.storage.page import PAGE_SIZE, PAGE_TRAILER_BYTES


def _image(fill: bytes) -> bytes:
    """A page image with the trailer reserve left zero, like real pages."""
    body = fill * ((PAGE_SIZE - PAGE_TRAILER_BYTES) // len(fill))
    return body + b"\0" * (PAGE_SIZE - len(body))


def test_memory_mode_round_trip():
    disk = PageFile(None)
    disk.write_page(0, _image(b"a"))
    disk.write_page(1, _image(b"b"))
    assert disk.read_page(0) == _image(b"a")
    assert disk.page_count == 2
    assert disk.size_bytes == 2 * PAGE_SIZE


def test_file_mode_round_trip(tmp_path):
    path = os.path.join(tmp_path, "pages.db")
    disk = PageFile(path)
    disk.write_page(0, _image(b"x"))
    disk.write_page(3, _image(b"y"))  # sparse write extends the file
    disk.sync()
    assert disk.read_page(3) == _image(b"y")
    assert disk.page_count == 4
    disk.close()
    assert os.path.getsize(path) == 4 * PAGE_SIZE

    reopened = PageFile(path)
    assert reopened.page_count == 4
    assert reopened.read_page(0) == _image(b"x")
    reopened.close()


def test_wrong_size_image_rejected():
    disk = PageFile(None)
    with pytest.raises(StorageError, match="exactly"):
        disk.write_page(0, b"short")


def test_read_beyond_end_rejected():
    disk = PageFile(None)
    with pytest.raises(StorageError, match="beyond"):
        disk.read_page(0)


def test_read_unwritten_hole_rejected_in_memory_mode():
    disk = PageFile(None)
    disk.write_page(2, _image(b"z"))
    with pytest.raises(StorageError, match="never written"):
        disk.read_page(0)


def test_read_unwritten_hole_rejected_in_file_mode(tmp_path):
    """Regression: a past-the-end write used to leave hole pages that
    failed with a 'short read' (or decoded as garbage) instead of the
    memory backend's 'never written'.  Both backends must now raise the
    same StorageError, and the gap must be explicitly zero-filled."""
    path = os.path.join(tmp_path, "holes.db")
    disk = PageFile(path)
    disk.write_page(3, _image(b"z"))
    disk.sync()
    assert os.path.getsize(path) == 4 * PAGE_SIZE
    for hole in (0, 1, 2):
        with pytest.raises(StorageError, match="never written"):
            disk.read_page(hole)
    assert disk.read_page(3) == _image(b"z")
    disk.close()
    # holes survive reopen with the same behaviour
    reopened = PageFile(path)
    with pytest.raises(StorageError, match="never written"):
        reopened.read_page(1)
    reopened.close()


def test_hole_page_can_be_filled_later(tmp_path):
    path = os.path.join(tmp_path, "holes.db")
    disk = PageFile(path)
    disk.write_page(2, _image(b"c"))
    disk.write_page(0, _image(b"a"))  # backfill a hole
    assert disk.read_page(0) == _image(b"a")
    with pytest.raises(StorageError, match="never written"):
        disk.read_page(1)
    disk.close()


def test_corrupt_file_size_rejected(tmp_path):
    path = os.path.join(tmp_path, "bad.db")
    with open(path, "wb") as handle:
        handle.write(b"x" * (PAGE_SIZE + 1))
    with pytest.raises(StorageError, match="multiple"):
        PageFile(path)


def test_meta_round_trip_memory():
    disk = PageFile(None)
    assert disk.read_meta() is None
    size = disk.write_meta({"roots": {"a": 1}})
    assert size > 0
    assert disk.read_meta() == {"roots": {"a": 1}}
    assert disk.meta_size_bytes == size


def test_meta_round_trip_file(tmp_path):
    path = os.path.join(tmp_path, "pages.db")
    disk = PageFile(path)
    disk.write_meta({"k": [1, 2, 3]})
    disk.close()
    reopened = PageFile(path)
    assert reopened.read_meta() == {"k": [1, 2, 3]}
    reopened.close()
    assert os.path.exists(path + ".meta")


def test_meta_write_is_atomic(tmp_path):
    """A rewrite never leaves a temp file behind, and the blob on disk is
    always complete (written via tmp + fsync + rename)."""
    path = os.path.join(tmp_path, "pages.db")
    disk = PageFile(path)
    disk.write_meta({"v": 1})
    disk.write_meta({"v": 2, "pad": "x" * 10_000})
    disk.close()
    assert not os.path.exists(path + ".meta.tmp")
    reopened = PageFile(path)
    assert reopened.read_meta() == {"v": 2, "pad": "x" * 10_000}
    reopened.close()


def test_truncated_meta_fails_loudly_not_as_fresh_store(tmp_path):
    """Regression: a crash mid-meta-write used to leave a truncated blob
    whose unpickling error escaped as a raw pickle exception.  A damaged
    blob must raise StorageError (and never read as 'no metadata')."""
    path = os.path.join(tmp_path, "pages.db")
    disk = PageFile(path)
    disk.write_meta({"roots": {"a": 1}})
    disk.close()
    with open(path + ".meta", "r+b") as handle:  # tear the blob in half
        blob = handle.read()
        handle.truncate(len(blob) // 2)
    reopened = PageFile(path)
    with pytest.raises(StorageError, match="corrupt metadata"):
        reopened.read_meta()
    reopened.close()


def test_interrupted_meta_rewrite_keeps_old_blob(tmp_path):
    """A stale .meta.tmp (crash before rename) must not shadow or damage
    the committed blob."""
    path = os.path.join(tmp_path, "pages.db")
    disk = PageFile(path)
    disk.write_meta({"committed": True})
    with open(path + ".meta.tmp", "wb") as handle:
        handle.write(b"\x80\x04partial")  # torn half-written temp file
    assert disk.read_meta() == {"committed": True}
    disk.close()


# -- the commit-epoch trailer ------------------------------------------------


def test_nonzero_trailer_reserve_rejected():
    disk = PageFile(None)
    with pytest.raises(StorageError, match="reserved"):
        disk.write_page(0, b"a" * PAGE_SIZE)


def test_pages_are_stamped_with_the_current_epoch():
    disk = PageFile(None)
    disk.write_page(0, _image(b"a"))
    disk.epoch = 7
    disk.write_page(3, _image(b"b"))
    assert disk.read_page_epoch(0) == 1
    assert disk.read_page_epoch(3) == 7
    assert disk.read_page_epoch(1) is None  # hole


def test_torn_page_detected_by_checksum(tmp_path):
    """Flipping bytes in a stored page (half a write landing) must raise
    on read and show up in the epoch scan — never decode as data."""
    path = os.path.join(tmp_path, "torn.db")
    disk = PageFile(path)
    disk.write_page(0, _image(b"a"))
    disk.write_page(1, _image(b"b"))
    disk.close()
    with open(path, "r+b") as handle:
        handle.seek(100)
        handle.write(b"CORRUPT")
    reopened = PageFile(path)
    with pytest.raises(StorageError, match="torn"):
        reopened.read_page(0)
    assert reopened.read_page(1) == _image(b"b")  # neighbour unharmed
    issues = reopened.epoch_issues(max_epoch=10)
    assert len(issues) == 1 and "torn" in issues[0]
    reopened.close()


def test_epoch_issues_flags_future_pages():
    disk = PageFile(None)
    disk.write_page(0, _image(b"a"))
    disk.epoch = 5
    disk.write_page(1, _image(b"b"))
    assert disk.epoch_issues(5) == []
    issues = disk.epoch_issues(4)
    assert len(issues) == 1 and "epoch 5" in issues[0]


def test_clear_page_makes_a_hole(tmp_path):
    path = os.path.join(tmp_path, "clear.db")
    disk = PageFile(path)
    disk.write_page(0, _image(b"a"))
    disk.write_page(1, _image(b"b"))
    disk.clear_page(0)
    with pytest.raises(StorageError, match="never written"):
        disk.read_page(0)
    assert disk.read_page_epoch(0) is None
    assert disk.read_page(1) == _image(b"b")
    assert disk.page_count == 2  # clearing never shrinks the file
    disk.close()


# -- vectored page I/O --------------------------------------------------------


@pytest.mark.parametrize("path_of", [lambda tmp: None,
                                     lambda tmp: os.path.join(tmp, "v.db")],
                         ids=["memory", "file"])
def test_read_pages_round_trip(tmp_path, path_of):
    disk = PageFile(path_of(tmp_path))
    disk.write_page(0, _image(b"a"))
    disk.write_page(1, _image(b"b"))
    disk.write_page(2, _image(b"c"))
    assert disk.read_pages(0, 3) == [_image(b"a"), _image(b"b"), _image(b"c")]
    assert disk.read_pages(1, 1) == [_image(b"b")]
    assert disk.read_pages(2, 0) == []
    disk.close()


@pytest.mark.parametrize("path_of", [lambda tmp: None,
                                     lambda tmp: os.path.join(tmp, "v.db")],
                         ids=["memory", "file"])
def test_read_pages_returns_none_for_holes(tmp_path, path_of):
    """Unlike read_page, a hole inside a speculative batch is data the
    caller skips, not an error."""
    disk = PageFile(path_of(tmp_path))
    disk.write_page(0, _image(b"a"))
    disk.write_page(2, _image(b"c"))  # leaves page 1 a hole
    assert disk.read_pages(0, 3) == [_image(b"a"), None, _image(b"c")]
    disk.close()


def test_read_pages_beyond_end_rejected():
    disk = PageFile(None)
    disk.write_page(0, _image(b"a"))
    with pytest.raises(StorageError, match="beyond"):
        disk.read_pages(0, 2)
    with pytest.raises(StorageError, match="negative"):
        disk.read_pages(0, -1)


def test_read_pages_torn_page_still_raises(tmp_path):
    path = os.path.join(tmp_path, "torn.db")
    disk = PageFile(path)
    disk.write_page(0, _image(b"a"))
    disk.write_page(1, _image(b"b"))
    disk.close()
    with open(path, "r+b") as handle:
        handle.seek(PAGE_SIZE + 100)
        handle.write(b"CORRUPT")
    reopened = PageFile(path)
    with pytest.raises(StorageError, match="torn"):
        reopened.read_pages(0, 2)
    reopened.close()


def test_write_pages_matches_per_page_writes(tmp_path):
    """The vectored write must leave bit-identical files to per-page
    writes — same stamps, same zero-filled gaps, same page count."""
    batched_path = os.path.join(tmp_path, "batched.db")
    single_path = os.path.join(tmp_path, "single.db")
    images = [_image(b"a"), _image(b"b"), _image(b"c")]

    batched = PageFile(batched_path)
    batched.epoch = 3
    batched.write_pages(2, images)  # past-the-end start: zero-fills 0..1
    assert batched.page_count == 5
    batched.close()

    single = PageFile(single_path)
    single.epoch = 3
    for offset, image in enumerate(images):
        single.write_page(2 + offset, image)
    single.close()

    with open(batched_path, "rb") as a, open(single_path, "rb") as b:
        assert a.read() == b.read()


def test_write_pages_empty_is_a_noop():
    disk = PageFile(None)
    disk.write_pages(0, [])
    assert disk.page_count == 0


def test_write_pages_validates_every_image():
    disk = PageFile(None)
    with pytest.raises(StorageError, match="exactly"):
        disk.write_pages(0, [_image(b"a"), b"short"])
    # validation happens before any write lands
    assert disk.page_count == 0


# -- redundant metadata writes ------------------------------------------------


def test_identical_meta_blob_is_skipped(tmp_path):
    path = os.path.join(tmp_path, "pages.db")
    disk = PageFile(path)
    first = disk.write_meta({"v": 1})
    assert first > 0
    mtime = os.path.getmtime(path + ".meta")
    assert disk.write_meta({"v": 1}) == 0  # byte-identical: not rewritten
    assert os.path.getmtime(path + ".meta") == mtime
    assert disk.meta_size_bytes == first  # size still reported
    assert disk.write_meta({"v": 2}) > 0  # changed blob lands
    assert disk.read_meta() == {"v": 2}
    disk.close()


def test_meta_skip_does_not_survive_reopen(tmp_path):
    """The skip compares against what *this handle* wrote; a fresh handle
    must write once before it can skip (it never read the old blob)."""
    path = os.path.join(tmp_path, "pages.db")
    disk = PageFile(path)
    disk.write_meta({"v": 1})
    disk.close()
    reopened = PageFile(path)
    assert reopened.write_meta({"v": 1}) > 0
    assert reopened.write_meta({"v": 1}) == 0
    reopened.close()
