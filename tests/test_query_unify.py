"""Unit + property tests for unification."""

from hypothesis import given, strategies as st

from repro.query import ast
from repro.query.unify import is_ground, occurs, rename_rule, resolve, unify, walk


def _var(name):
    return ast.Var(name)


def test_const_unifies_with_equal_const():
    assert unify(ast.Const(1), ast.Const(1), {}) == {}
    assert unify(ast.Const("a"), ast.Const("a"), {}) == {}


def test_const_mismatch_fails():
    assert unify(ast.Const(1), ast.Const(2), {}) is None


def test_atom_does_not_unify_with_string():
    assert unify(ast.Const(ast.sym("foo")), ast.Const("foo"), {}) is None


def test_bool_does_not_unify_with_int():
    assert unify(ast.Const(True), ast.Const(1), {}) is None


def test_int_unifies_with_equal_float():
    assert unify(ast.Const(1), ast.Const(1.0), {}) is not None


def test_var_binds_to_const():
    subst = unify(_var("X"), ast.Const(5), {})
    assert walk(_var("X"), subst) == ast.Const(5)


def test_var_to_var_aliasing():
    subst = unify(_var("X"), _var("Y"), {})
    subst = unify(_var("Y"), ast.Const(3), subst)
    assert resolve(_var("X"), subst) == ast.Const(3)


def test_same_var_unifies_without_binding():
    assert unify(_var("X"), _var("X"), {}) == {}


def test_struct_unification_binds_arguments():
    left = ast.Struct("f", (_var("X"), ast.Const(2)))
    right = ast.Struct("f", (ast.Const(1), _var("Y")))
    subst = unify(left, right, {})
    assert resolve(_var("X"), subst) == ast.Const(1)
    assert resolve(_var("Y"), subst) == ast.Const(2)


def test_functor_and_arity_must_match():
    assert unify(ast.Struct("f", (ast.Const(1),)), ast.Struct("g", (ast.Const(1),)), {}) is None
    assert unify(ast.Struct("f", (ast.Const(1),)), ast.Struct("f", ()), {}) is None


def test_substitution_is_not_mutated():
    base = unify(_var("X"), ast.Const(1), {})
    result = unify(_var("Y"), ast.Const(2), base)
    assert _var("Y") not in base
    assert _var("Y") in result


def test_partial_failure_leaves_input_subst_valid():
    left = ast.Struct("f", (_var("X"), ast.Const(1)))
    right = ast.Struct("f", (ast.Const(9), ast.Const(2)))
    before = {}
    assert unify(left, right, before) is None
    assert before == {}


def test_occurs_check_detects_cycle():
    term = ast.Struct("f", (_var("X"),))
    assert occurs(_var("X"), term, {})
    assert unify(_var("X"), term, {}, occurs_check=True) is None


def test_is_ground():
    assert is_ground(ast.Const(1), {})
    assert not is_ground(_var("X"), {})
    subst = {_var("X"): ast.Const(1)}
    assert is_ground(ast.Struct("f", (_var("X"),)), subst)


def test_rename_rule_standardizes_apart():
    rule = ast.Rule(
        head=ast.Struct("p", (_var("X"),)),
        body=(ast.Struct("q", (_var("X"), _var("Y"))),),
    )
    renamed_a = rename_rule(rule)
    renamed_b = rename_rule(rule)
    # fresh everywhere, but consistent within one renaming
    assert renamed_a.head.args[0] == renamed_a.body[0].args[0]
    assert renamed_a.head.args[0] != rule.head.args[0]
    assert renamed_a.head.args[0] != renamed_b.head.args[0]


def test_list_round_trip():
    items = [ast.Const(1), ast.Const("two"), ast.Const(3.0)]
    assert list(ast.iter_list(ast.list_term(items))) == items
    assert ast.is_list(ast.list_term(items))
    assert not ast.is_list(_var("X"))


# -- properties --------------------------------------------------------------

_consts = st.one_of(
    st.integers(-5, 5),
    st.sampled_from(["a", "b"]),
    st.booleans(),
)


def _terms():
    return st.recursive(
        st.one_of(
            _consts.map(ast.Const),
            st.sampled_from(["X", "Y", "Z"]).map(ast.Var),
        ),
        lambda children: st.tuples(
            st.sampled_from(["f", "g"]),
            st.lists(children, min_size=1, max_size=2),
        ).map(lambda pair: ast.Struct(pair[0], tuple(pair[1]))),
        max_leaves=6,
    )


@given(_terms())
def test_unify_reflexive(term):
    assert unify(term, term, {}) is not None


@given(_terms(), _terms())
def test_unify_symmetric(left, right):
    forward = unify(left, right, {})
    backward = unify(right, left, {})
    assert (forward is None) == (backward is None)


@given(_terms(), _terms())
def test_unifier_makes_terms_equal(left, right):
    # occurs check on: without it unify(X, f(X)) legitimately builds a
    # cyclic substitution (standard Prolog), which resolve cannot print.
    subst = unify(left, right, {}, occurs_check=True)
    if subst is not None:
        assert resolve(left, subst) == resolve(right, subst)
