"""Tests for the LabFlow-1 stream generator."""

import pytest

from repro.benchmark.config import TINY, BenchmarkConfig
from repro.benchmark.workload import LabFlowWorkload, benchmark_value_factory
from repro.labbase import LabBase
from repro.storage import OStoreMM, ObjectStoreSM
from repro.util.rng import DeterministicRng
from repro.workflow.spec import AttributeSpec, StepSpec, ValueKind


def _workload(config=TINY, sm=None):
    db = LabBase(sm or OStoreMM())
    return db, LabFlowWorkload(db, config)


def test_run_interval_creates_configured_clones():
    db, workload = _workload()
    workload.setup_schema()
    tally = workload.run_interval("0.5X")
    assert tally.clones_created == TINY.clones_per_interval
    assert tally.steps_executed > 0
    assert tally.queries_executed == TINY.clones_per_interval * TINY.queries_per_intake
    assert db.count_materials("clone", include_subclasses=False) == TINY.clones_per_interval


def test_run_all_covers_every_interval():
    _db, workload = _workload()
    tallies = workload.run_all()
    assert [t.label for t in tallies] == list(TINY.interval_labels)


def test_operation_tally_shape():
    _db, workload = _workload()
    tallies = workload.run_all()
    ops = set()
    for tally in tallies:
        ops.update(tally.operations.counts)
    assert "U1" in ops and "U2" in ops and "U3" in ops
    assert any(op.startswith("Q") for op in ops)


def test_integrity_counters_match_scans():
    _db, workload = _workload()
    workload.run_all()
    counts = workload.check_integrity()
    assert counts["materials"] > 0 and counts["steps"] > 0


def test_same_seed_same_stream_across_stores():
    """The cross-server guarantee: identical logical databases."""
    db_a, workload_a = _workload(sm=OStoreMM())
    db_b, workload_b = _workload(sm=ObjectStoreSM(buffer_pages=32))
    workload_a.run_all()
    workload_b.run_all()
    assert db_a.catalog.material_counts == db_b.catalog.material_counts
    assert db_a.catalog.step_counts == db_b.catalog.step_counts
    assert db_a.sets.state_census() == db_b.sets.state_census()
    # spot-check a material's attributes end to end
    oid_a = db_a.lookup("clone", "clone-000001")
    oid_b = db_b.lookup("clone", "clone-000001")
    assert db_a.current_attributes(oid_a) == db_b.current_attributes(oid_b)


def test_different_seed_different_stream():
    db_a, workload_a = _workload(TINY.with_(seed=1))
    db_b, workload_b = _workload(TINY.with_(seed=2))
    workload_a.run_all()
    workload_b.run_all()
    attrs_a = db_a.current_attributes(db_a.lookup("clone", "clone-000001"))
    attrs_b = db_b.current_attributes(db_b.lookup("clone", "clone-000001"))
    assert attrs_a != attrs_b


def test_drain_quiesces_workflow():
    db, workload = _workload()
    workload.run_all()
    workload.drain()
    graph = workload.graph
    for state in graph.states():
        if not graph.is_terminal(state):
            assert db.in_state(state) == []


def test_benchmark_value_factory_sizes_hit_lists():
    config = BenchmarkConfig(blast_mean_hits=30, blast_max_hits=40)
    factory = benchmark_value_factory(config)
    step = StepSpec("blast_search", (), ("clone",))
    attribute = AttributeSpec("hits", ValueKind.HIT_LIST)
    rng = DeterministicRng(3)
    lists = [factory(step, attribute, "c-1", rng) for _ in range(50)]
    assert all(len(hits) <= 40 for hits in lists)
    assert any(len(hits) > 10 for hits in lists)


def test_registry_tracks_created_materials():
    _db, workload = _workload()
    workload.run_all()
    assert workload.registry.count() >= workload.tallies[0].clones_created
    assert "tclone" in workload.registry.by_class


def test_dql_query_path_runs():
    _db, workload = _workload(TINY.with_(query_path="dql", queries_per_intake=1))
    tallies = workload.run_all()
    assert all(t.queries_executed > 0 for t in tallies)
