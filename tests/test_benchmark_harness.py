"""Tests for the harness and report rendering."""

import pytest

from repro.benchmark import (
    TINY,
    render_comparison,
    render_run,
    render_stats,
    render_workload,
    run_comparison,
    run_server,
    server_spec,
)
from repro.benchmark.harness import RunResult
from repro.errors import UnknownBackendError
from repro.storage.registry import backend_names


@pytest.fixture(scope="module")
def comparison(tmp_path_factory):
    config = TINY.with_(db_dir=str(tmp_path_factory.mktemp("dbs")))
    return run_comparison(config)


def test_all_registered_servers_run(comparison):
    """The comparison covers every registered backend, in column order."""
    assert tuple(run.server for run in comparison.runs) == backend_names()
    # The original five plus the mmap sixth must all be registered.
    for name in ("OStore", "Texas+TC", "Texas", "OStore-mm", "Texas-mm",
                 "mmap"):
        assert name in backend_names()


def test_intervals_metered(comparison):
    for run in comparison.runs:
        assert [i.label for i in run.intervals] == list(TINY.interval_labels)
        for interval in run.intervals:
            assert interval.usage.elapsed_sec >= 0
            assert interval.tally.transactions > 0


def test_identical_workload_across_servers(comparison):
    """Object-level reads/writes must match exactly between servers."""
    reference = comparison.runs[0].final_stats
    for run in comparison.runs[1:]:
        assert run.final_stats["objects_read"] == reference["objects_read"]
        assert run.final_stats["objects_written"] == reference["objects_written"]


def test_memory_versions_report_no_size_or_faults(comparison):
    for name in ("OStore-mm", "Texas-mm"):
        run = comparison.run_for(name)
        total = run.total_usage()
        assert total.size_bytes == 0
        assert total.majflt == 0


def test_texas_database_larger(comparison):
    # Strictly larger, not a fixed multiple: the schema-aware codec packs
    # records densely enough that power-of-two charging's waste over the
    # exact-charge OStore narrows well below the pickle-era 1.2x floor.
    ostore = comparison.run_for("OStore").intervals[-1].usage.size_bytes
    texas = comparison.run_for("Texas").intervals[-1].usage.size_bytes
    assert texas > ostore


def test_database_grows_across_intervals(comparison):
    for name in ("OStore", "Texas", "Texas+TC", "mmap"):
        sizes = [i.usage.size_bytes for i in comparison.run_for(name).intervals]
        assert sizes == sorted(sizes)
        assert sizes[0] > 0


def test_usage_lookup_by_label(comparison):
    run = comparison.runs[0]
    assert run.usage_for("0.5X") is run.intervals[0].usage
    with pytest.raises(KeyError):
        run.usage_for("9.9X")
    with pytest.raises(KeyError):
        comparison.run_for("DB2")


def test_render_comparison_layout(comparison):
    text = render_comparison(comparison)
    assert "Database Server Version" in text
    for resource in ("elapsed sec", "user cpu sec", "sys cpu sec", "majflt", "size (bytes)"):
        assert resource in text
    for label in TINY.interval_labels:
        assert label in text
    for server in ("OStore", "Texas+TC", "Texas-mm"):
        assert server in text
    # mm size column renders "-"
    assert "-" in text


def test_render_run_and_stats_and_workload(comparison):
    run = comparison.runs[0]
    assert "OStore" in render_run(run)
    stats = render_stats(comparison)
    assert "major_faults" in stats and "swizzle_operations" in stats
    workload = render_workload(run)
    assert "U1" in workload and "txns" in workload


def test_run_server_keep_db_returns_open_database(tmp_path):
    config = TINY.with_(db_dir=str(tmp_path))
    result, db = run_server(server_spec("OStore"), config, keep_db=True)
    assert isinstance(result, RunResult)
    assert db.count_materials("clone") > 0  # still open and queryable
    db.storage.close()


def test_unknown_server_rejected():
    with pytest.raises(UnknownBackendError) as excinfo:
        server_spec("Oracle7")
    # The error names every registered backend, so a typo is a
    # one-glance fix at the CLI.
    for name in backend_names():
        assert name in str(excinfo.value)


def test_mmap_matches_ostore_counters(comparison):
    """Same policies above the disk layer: identical logical behaviour."""
    ostore = comparison.run_for("OStore").final_stats
    mm = comparison.run_for("mmap").final_stats
    for counter in ("objects_read", "objects_written", "major_faults",
                    "page_writes", "commits", "swizzle_operations"):
        assert mm[counter] == ostore[counter], counter
    # Every demand read the mmap run performed was served zero-copy from
    # the map; the buffered contender never maps a page.  (At this tiny
    # scale the pool may absorb everything — the equality holds at any
    # scale, including zero faults.)
    assert mm["mapped_reads"] == mm["major_faults"]
    assert ostore["mapped_reads"] == 0
    ostore_size = comparison.run_for("OStore").intervals[-1].usage.size_bytes
    mmap_size = comparison.run_for("mmap").intervals[-1].usage.size_bytes
    # size_bytes counts the meta blob too, and the meta's only
    # cross-backend difference is the store's self-identifying name —
    # the page file itself is byte-identical (test_mmap_equivalence).
    assert mmap_size - ostore_size == len("mmap") - len("OStore")
