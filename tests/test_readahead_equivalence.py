"""Property test: batched I/O is invisible to disk and to queries.

The A5 ablation is only honest if the read-ahead window changes *speed*
and nothing else.  Read-ahead stages raw page images outside the buffer
pool and vectored commit writes keep page-id order, so a random workload
must produce **bit-identical database files** and identical query
answers with batching on or off, on every persistent server version —
and the same answers again on the main-memory versions.

On top of byte identity, the fault accounting must balance: every page
the un-batched run faulted in is served in the batched run either as a
major fault or as a prefetch hit, never both, never dropped.
"""

import os
import tempfile

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.labbase import LabBase
from repro.storage import (
    MMapStoreSM,
    ObjectStoreSM,
    OStoreMM,
    TexasSM,
    TexasTCSM,
    TexasMM,
)

PERSISTENT = [
    ("ostore", ObjectStoreSM),
    ("texas", TexasSM),
    ("texas_tc", TexasTCSM),
    ("mmap", MMapStoreSM),
]
STATES = ("arrived", "assayed", "filed")

#: Small pool so random workloads actually fault; the paper's discipline.
POOL_PAGES = 24


def _run_workload(db: LabBase, codes: list[int]) -> None:
    """Deterministic interpreter: the integer stream fixes every choice."""
    db.define_material_class("clone")
    db.define_step_class("assay", ["q", "r"], ["clone"])
    materials: list[int] = []
    steps: list[int] = []
    t = 0
    for code in codes:
        t += 1
        kind = code % 7
        if kind == 0 or not materials:
            oid = db.create_material(
                "clone", f"c-{t}", t, state=STATES[code % len(STATES)]
            )
            materials.append(oid)
        elif kind == 1:
            target = materials[code % len(materials)]
            steps.append(
                db.record_step(
                    "assay", t, [target],
                    {"q": code, "r": "x" * (code % 40)},
                )
            )
        elif kind == 2:
            target = materials[code % len(materials)]
            db.set_state(target, STATES[code % len(STATES)], t)
        elif kind == 3:
            # A transaction block rewriting the same material repeatedly
            # — the vectored-commit case byte-identity must survive.
            target = materials[code % len(materials)]
            db.begin()
            steps.append(db.record_step("assay", t, [target], {"q": code}))
            db.set_state(target, STATES[code % len(STATES)], t)
            steps.append(db.record_step("assay", t + 1, [target], {"r": "y"}))
            db.commit()
            t += 1
        elif kind == 4:
            # An aborted transaction: nothing of it may reach disk, with
            # or without batching.
            target = materials[code % len(materials)]
            db.begin()
            db.record_step("assay", t, [target], {"q": -code})
            db.abort()
            steps = [oid for oid in steps if db.storage.exists(oid)]
        elif kind == 5:
            # A cold sequential re-read: the prefetcher's bread and
            # butter, interleaved with the write mix.  (Main-memory
            # stores have no buffer to chill; the read still runs.)
            drop_buffer = getattr(db.storage, "drop_buffer", None)
            if drop_buffer is not None:
                drop_buffer()
            target = materials[code % len(materials)]
            for _oid, _step in db.material_history(target):
                pass
        elif steps:
            db.retract_step(steps.pop(code % len(steps)))


def _answers(db: LabBase) -> dict:
    """Every query family's full answer set, keyed by material."""
    snapshot: dict = {"states": {}, "materials": {}}
    for state in STATES:
        snapshot["states"][state] = sorted(db.in_state(state))
    for oid, record in db.iter_materials():
        snapshot["materials"][record["key"]] = {
            "state": db.state_of(oid),
            "attrs": db.current_attributes(oid),
            "history_len": db.history_length(oid),
            "history": [
                (step["valid_time"], step["results"])
                for _oid, step in db.material_history(oid)
            ],
        }
    snapshot["counts"] = (
        db.count_materials("clone"), db.count_steps("assay"),
    )
    return snapshot


def _file_bytes(directory: str) -> dict[str, bytes]:
    contents = {}
    for name in sorted(os.listdir(directory)):
        with open(os.path.join(directory, name), "rb") as handle:
            contents[name] = handle.read()
    return contents


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(codes=st.lists(st.integers(0, 9999), min_size=8, max_size=50))
def test_readahead_on_off_equivalence(codes):
    answers: dict[tuple, dict] = {}
    files: dict[tuple, dict[str, bytes]] = {}
    counters: dict[tuple, dict] = {}

    with tempfile.TemporaryDirectory() as workdir:
        for server_name, cls in PERSISTENT:
            for window in (8, 0):
                directory = os.path.join(workdir, f"{server_name}_{window}")
                os.makedirs(directory)
                sm = cls(
                    path=os.path.join(directory, "db.pages"),
                    buffer_pages=POOL_PAGES,
                    readahead_pages=window,
                )
                db = LabBase(sm)
                _run_workload(db, codes)
                answers[(server_name, window)] = _answers(db)
                counters[(server_name, window)] = sm.stats.snapshot()
                sm.close()
                files[(server_name, window)] = _file_bytes(directory)

        for server_name, _cls in PERSISTENT:
            assert files[(server_name, 8)] == files[(server_name, 0)], (
                f"{server_name}: read-ahead on/off databases differ on disk"
            )
            assert answers[(server_name, 8)] == answers[(server_name, 0)]
            on, off = counters[(server_name, 8)], counters[(server_name, 0)]
            # Each page the plain run faulted is served exactly once in
            # the batched run too — as a fault or as a prefetch hit.
            assert (
                on["major_faults"] + on["prefetch_hits"] == off["major_faults"]
            ), f"{server_name}: fault accounting out of balance"
            # The stage lives outside the pool: hits and writes identical.
            assert on["buffer_hits"] == off["buffer_hits"]
            assert on["page_writes"] == off["page_writes"]
            assert off["pages_prefetched"] == 0 and off["io_batches"] == 0

    # answers also agree across every server version (incl. main-memory)
    reference = answers[("ostore", 8)]
    for key, snapshot in answers.items():
        assert snapshot == reference, f"{key} disagrees with OStore"
    for cls in (OStoreMM, TexasMM):
        db = LabBase(cls())
        _run_workload(db, codes)
        assert _answers(db) == reference
