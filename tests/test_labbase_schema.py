"""Unit tests for user-level schema objects."""

import pytest

from repro.errors import SchemaError
from repro.labbase.schema import MaterialClass, StepClass, StepClassVersion


def test_material_class_requires_name_and_key():
    with pytest.raises(SchemaError):
        MaterialClass(name="")
    with pytest.raises(SchemaError):
        MaterialClass(name="clone", key_attribute="")


def test_version_identified_by_attribute_set():
    v1 = StepClassVersion(1, "seq", ("a", "b"), ())
    assert v1.attribute_set == frozenset({"a", "b"})


def test_validate_results_accepts_declared_subset():
    version = StepClassVersion(1, "seq", ("a", "b", "c"), ())
    version.validate_results({"a": 1})
    version.validate_results({})
    version.validate_results({"a": 1, "b": 2, "c": 3})


def test_validate_results_rejects_undeclared():
    version = StepClassVersion(1, "seq", ("a",), ())
    with pytest.raises(SchemaError, match="does not declare"):
        version.validate_results({"zzz": 1})


def test_version_meta_round_trip():
    version = StepClassVersion(7, "seq", ("x", "y"), ("clone",), "desc")
    assert StepClassVersion.from_meta(version.to_meta()) == version


def test_step_class_current_is_newest():
    v1 = StepClassVersion(1, "s", ("a",), ())
    v2 = StepClassVersion(2, "s", ("a", "b"), ())
    step_class = StepClass("s", [v1, v2])
    assert step_class.current is v2


def test_step_class_without_versions_raises():
    with pytest.raises(SchemaError):
        StepClass("s").current


def test_find_version_by_attribute_set():
    v1 = StepClassVersion(1, "s", ("a",), ())
    v2 = StepClassVersion(2, "s", ("a", "b"), ())
    step_class = StepClass("s", [v1, v2])
    assert step_class.find_version(frozenset({"a"})) is v1
    assert step_class.find_version(frozenset({"b", "a"})) is v2
    assert step_class.find_version(frozenset({"z"})) is None


def test_attribute_order_does_not_matter_for_identity():
    v1 = StepClassVersion(1, "s", ("a", "b"), ())
    step_class = StepClass("s", [v1])
    assert step_class.find_version(frozenset(("b", "a"))) is v1


def test_version_by_id():
    v1 = StepClassVersion(5, "s", ("a",), ())
    step_class = StepClass("s", [v1])
    assert step_class.version_by_id(5) is v1
    with pytest.raises(SchemaError):
        step_class.version_by_id(6)
