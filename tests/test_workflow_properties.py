"""Property-based tests for workflows: DSL round-trip and liveness."""

from __future__ import annotations

import string

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.labbase import LabBase
from repro.storage import OStoreMM
from repro.util.rng import DeterministicRng
from repro.workflow import WorkflowEngine, WorkflowGraph
from repro.workflow.dsl import parse_workflow, render_workflow
from repro.workflow.spec import (
    AttributeSpec,
    MaterialSpec,
    StepSpec,
    Transition,
    ValueKind,
    WorkflowSpec,
)

_name = st.text(string.ascii_lowercase, min_size=1, max_size=8)


@st.composite
def linear_workflows(draw) -> WorkflowSpec:
    """Random linear pipelines with optional bounded-retry back edges.

    States s0 -> s1 -> ... -> sN (terminal); each edge may carry a
    failure branch back to the previous state (a re-queue cycle).
    """
    n_states = draw(st.integers(2, 6))
    states = [f"s{i}" for i in range(n_states)]
    n_attrs = draw(st.integers(0, 3))
    steps = []
    transitions = []
    for i in range(n_states - 1):
        attrs = tuple(
            AttributeSpec(f"a{i}_{j}", draw(st.sampled_from(list(ValueKind))))
            for j in range(n_attrs)
        )
        steps.append(StepSpec(f"step{i}", attrs, ("m",)))
        fail = draw(st.booleans()) and i > 0
        transitions.append(
            Transition(
                f"step{i}",
                states[i],
                states[i + 1],
                fail_state=states[i - 1] if fail else None,
                fail_probability=draw(st.floats(0.05, 0.5)) if fail else 0.0,
                test=f"test:t{i}" if fail else None,
            )
        )
    return WorkflowSpec(
        name=draw(_name),
        materials=[MaterialSpec("m", "m", initial_state=states[0])],
        steps=steps,
        transitions=transitions,
        terminal_states=(states[-1],),
    )


@settings(max_examples=40, deadline=None)
@given(spec=linear_workflows())
def test_dsl_round_trip_property(spec):
    """render -> parse is the identity on every generated workflow."""
    reparsed = parse_workflow(render_workflow(spec))
    assert reparsed.name == spec.name
    assert reparsed.materials == spec.materials
    assert reparsed.transitions == spec.transitions
    assert reparsed.terminal_states == spec.terminal_states
    assert [s.class_name for s in reparsed.steps] == [
        s.class_name for s in spec.steps
    ]
    for original_step in spec.steps:
        assert reparsed.step(original_step.class_name).attributes == \
            original_step.attributes


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(spec=linear_workflows(), seed=st.integers(0, 2**16))
def test_generated_workflows_validate_and_terminate(spec, seed):
    """Every generated workflow validates, and (since failure
    probabilities are < 1) every material eventually terminates."""
    graph = WorkflowGraph(spec)  # must validate
    db = LabBase(OStoreMM())
    engine = WorkflowEngine(db, graph, DeterministicRng(seed))
    engine.install_schema()
    oid = engine.create_material("m")
    events = engine.run_to_completion(oid, max_steps=2000)
    assert db.state_of(oid) == spec.terminal_states[0]
    assert len(events) >= len(spec.steps)
    # the audit trail recorded every executed step
    assert db.history_length(oid) == len(events)


@settings(max_examples=25, deadline=None)
@given(spec=linear_workflows(), seed=st.integers(0, 2**16))
def test_engine_determinism_property(spec, seed):
    """Same workflow + same seed => identical event streams."""
    def run():
        db = LabBase(OStoreMM())
        engine = WorkflowEngine(db, WorkflowGraph(spec), DeterministicRng(seed))
        engine.install_schema()
        oid = engine.create_material("m")
        events = engine.run_to_completion(oid, max_steps=2000)
        return [(e.step_class, e.from_state, e.to_state, e.failed)
                for e in events]

    assert run() == run()
