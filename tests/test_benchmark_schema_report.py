"""Tests for the EER figure rendering (E3)."""

from repro.benchmark.schema_report import eer_text, schema_statistics
from repro.workflow.genome import build_genome_spec


def test_eer_text_has_both_levels():
    text = eer_text(build_genome_spec())
    assert "material" in text and "step" in text and "involves" in text
    assert "is-a" in text  # the dashed lower level
    for name in ("clone", "tclone", "gel"):
        assert name in text
    for step in ("associate_tclone", "determine_sequence", "blast_search"):
        assert step in text
    assert "hit_list" in text  # attribute kinds shown


def test_schema_statistics_pin_the_figure():
    stats = schema_statistics(build_genome_spec())
    assert stats == {
        "material_classes": 3,
        "step_classes": 9,
        "attributes": 19,
        "transitions": 9,
        "terminal_states": 3,
    }
