"""Unit tests for the persistent catalog and schema evolution."""

import pytest

from repro.errors import SchemaError, UnknownClassError
from repro.labbase.catalog import Catalog
from repro.labbase.schema import MaterialClass
from repro.storage import ObjectStoreSM, OStoreMM


def _catalog(sm=None) -> Catalog:
    return Catalog(sm or OStoreMM(), None)


def test_register_and_fetch_material_class():
    catalog = _catalog()
    catalog.register_material_class(MaterialClass("clone"))
    assert catalog.material_class("clone").name == "clone"


def test_register_material_class_idempotent_for_equal_definition():
    catalog = _catalog()
    catalog.register_material_class(MaterialClass("clone"))
    catalog.register_material_class(MaterialClass("clone"))  # no error


def test_register_conflicting_definition_rejected():
    catalog = _catalog()
    catalog.register_material_class(MaterialClass("clone"))
    with pytest.raises(SchemaError, match="different definition"):
        catalog.register_material_class(MaterialClass("clone", key_attribute="id"))


def test_unknown_material_class():
    with pytest.raises(UnknownClassError):
        _catalog().material_class("nope")


def test_parent_must_exist():
    catalog = _catalog()
    with pytest.raises(SchemaError, match="unknown parent"):
        catalog.register_material_class(MaterialClass("tclone", parent="clone"))


def test_is_a_hierarchy():
    catalog = _catalog()
    catalog.register_material_class(MaterialClass("clone"))
    catalog.register_material_class(MaterialClass("tclone", parent="clone"))
    catalog.register_material_class(MaterialClass("gel"))
    assert catalog.is_subclass("tclone", "clone")
    assert catalog.is_subclass("clone", "clone")
    assert not catalog.is_subclass("clone", "tclone")
    assert not catalog.is_subclass("gel", "clone")
    assert sorted(catalog.subclasses("clone")) == ["clone", "tclone"]


def test_step_class_registration_creates_version_1():
    catalog = _catalog()
    version = catalog.register_step_class("seq", ("a", "b"))
    assert version.version_id == 1
    assert catalog.step_class("seq").current is version


def test_same_attribute_set_reuses_version():
    catalog = _catalog()
    v1 = catalog.register_step_class("seq", ("a", "b"))
    v1_again = catalog.register_step_class("seq", ("b", "a"))  # order-free
    assert v1_again is v1


def test_new_attribute_set_creates_new_version():
    """The U4 schema-change operation."""
    catalog = _catalog()
    v1 = catalog.register_step_class("seq", ("a",))
    v2 = catalog.register_step_class("seq", ("a", "b"))
    assert v2.version_id != v1.version_id
    assert catalog.step_class("seq").current is v2
    assert catalog.step_class("seq").version_by_id(v1.version_id) is v1


def test_involves_classes_must_exist():
    catalog = _catalog()
    with pytest.raises(UnknownClassError):
        catalog.register_step_class("seq", ("a",), involves_classes=("clone",))


def test_step_version_lookup_across_classes():
    catalog = _catalog()
    v1 = catalog.register_step_class("one", ("a",))
    v2 = catalog.register_step_class("two", ("b",))
    assert catalog.step_version(v1.version_id).name == "one"
    assert catalog.step_version(v2.version_id).name == "two"
    with pytest.raises(SchemaError):
        catalog.step_version(99)


def test_catalog_persists_and_reloads(tmp_path):
    sm = ObjectStoreSM(path=str(tmp_path / "cat.db"))
    catalog = Catalog(sm, None)
    catalog.register_material_class(MaterialClass("clone"))
    catalog.register_material_class(MaterialClass("tclone", parent="clone"))
    v1 = catalog.register_step_class("seq", ("a",), involves_classes=("clone",))
    v2 = catalog.register_step_class("seq", ("a", "b"))
    catalog.material_counts["clone"] = 42
    catalog.save_counters()
    sm.close()

    sm2 = ObjectStoreSM(path=str(tmp_path / "cat.db"))
    restored = Catalog(sm2, None)
    assert restored.material_class("tclone").parent == "clone"
    assert len(restored.step_class("seq").versions) == 2
    assert restored.step_class("seq").current.version_id == v2.version_id
    assert restored.material_counts["clone"] == 42
    # version ids keep increasing after reload
    v3 = restored.register_step_class("seq", ("a", "b", "c"))
    assert v3.version_id > v2.version_id
    sm2.close()


def test_reload_discards_unsaved_changes():
    sm = OStoreMM()
    catalog = Catalog(sm, None)
    catalog.register_material_class(MaterialClass("clone"))
    catalog.material_counts["clone"] = 7  # not saved
    catalog.reload()
    assert catalog.material_counts["clone"] == 0
