"""Regression test for the free-variable aggregation pitfall.

`state_population(S, N)` with S unbound must enumerate per-state
populations — the bug this pins was S staying unbound while count/2
aggregated every state fact.
"""

from repro.labbase import LabBase, LabClock
from repro.query.library import new_program_with_library
from repro.storage import OStoreMM


def test_state_population_enumerates_states():
    db = LabBase(OStoreMM())
    clock = LabClock()
    db.define_material_class("m")
    for index, state in enumerate(["a", "a", "a", "b", "b"]):
        db.create_material("m", f"k-{index}", clock.tick(), state=state)
    program = new_program_with_library(db)
    rows = program.solutions("state_population(S, N), N > 0.")
    assert {(row["S"], row["N"]) for row in rows} == {("a", 3), ("b", 2)}


def test_workflow_state_enumerates_even_empty_states():
    db = LabBase(OStoreMM())
    clock = LabClock()
    db.define_material_class("m")
    oid = db.create_material("m", "k", clock.tick(), state="start")
    db.set_state(oid, "end", clock.tick())
    program = new_program_with_library(db)
    states = {row["S"] for row in program.solve("workflow_state(S).")}
    assert states == {"start", "end"}  # start is empty but known
    rows = program.solutions("state_population(start, N).")
    assert rows == [{"N": 0}]
