"""Unit tests for workflow specification objects."""

import pytest

from repro.errors import InvalidWorkflowError
from repro.workflow.spec import (
    AttributeSpec,
    MaterialSpec,
    StepSpec,
    Transition,
    ValueKind,
    WorkflowSpec,
)


def _step(name="s", attrs=("a",)):
    return StepSpec(
        class_name=name,
        attributes=tuple(AttributeSpec(a, ValueKind.INTEGER) for a in attrs),
        involves_classes=("m",),
    )


def test_step_attribute_names():
    step = _step(attrs=("x", "y"))
    assert step.attribute_names == ("x", "y")
    assert step.attribute("x").kind is ValueKind.INTEGER
    with pytest.raises(InvalidWorkflowError):
        step.attribute("zzz")


def test_transition_validation():
    Transition("s", "a", "b")  # plain edge is fine
    Transition("s", "a", "b", fail_state="a", fail_probability=0.5)
    with pytest.raises(InvalidWorkflowError, match="outside"):
        Transition("s", "a", "b", fail_state="a", fail_probability=1.5)
    with pytest.raises(InvalidWorkflowError, match="without fail state"):
        Transition("s", "a", "b", fail_probability=0.5)


def test_workflow_spec_lookups():
    spec = WorkflowSpec(
        name="w",
        materials=[MaterialSpec("m", "m", initial_state="start")],
        steps=[_step()],
        transitions=[Transition("s", "start", "end")],
        terminal_states=("end",),
    )
    assert spec.material("m").key_prefix == "m"
    assert spec.step("s").class_name == "s"
    with pytest.raises(InvalidWorkflowError):
        spec.material("nope")
    with pytest.raises(InvalidWorkflowError):
        spec.step("nope")
