"""Tests for the extended builtin set (lists, sorting, forall, atoms)."""

import pytest

from repro.errors import EvaluationError, InstantiationError
from repro.query import Program


@pytest.fixture
def program():
    return Program(text="n(3). n(1). n(2). n(1).")


def test_nth0_access_and_enumeration(program):
    assert program.first("nth0(1, [a, b, c], X).")["X"] == "b"
    assert not program.ask("nth0(9, [a], X).")
    rows = program.solutions("nth0(I, [x, y], E).")
    assert rows == [{"I": 0, "E": "x"}, {"I": 1, "E": "y"}]


def test_nth0_check_mode(program):
    assert program.ask("nth0(0, [a, b], a).")
    assert not program.ask("nth0(0, [a, b], b).")


def test_last(program):
    assert program.first("last([1, 2, 3], X).")["X"] == 3
    assert not program.ask("last([], X).")


def test_sort_dedups_msort_keeps(program):
    assert program.first("msort([3, 1, 2, 1], S).")["S"] == [1, 1, 2, 3]
    assert program.first("sort([3, 1, 2, 1], S).")["S"] == [1, 2, 3]


def test_sort_mixed_types_total_order(program):
    result = program.first('sort([b, 2, "s", a, 1], S).')["S"]
    assert result == [1, 2, "a", "b", "s"]  # numbers < atoms < strings


def test_sum_min_max_list(program):
    assert program.first("sum_list([1, 2, 3], S).")["S"] == 6
    assert program.first("sum_list([], S).")["S"] == 0
    assert program.first("max_list([3, 9, 2], M).")["M"] == 9
    assert program.first("min_list([3, 9, 2], M).")["M"] == 2
    assert not program.ask("max_list([], M).")


def test_aggregates_via_findall_pipeline(program):
    row = program.first("findall(X, n(X), Xs), msort(Xs, S), last(S, Max).")
    assert row["S"] == [1, 1, 2, 3]
    assert row["Max"] == 3


def test_forall(program):
    assert program.ask("forall(n(X), X > 0).")
    assert not program.ask("forall(n(X), X > 1).")
    assert program.ask("forall(fail, fail).")  # vacuously true


def test_atom_length(program):
    assert program.first("atom_length(hello, N).")["N"] == 5
    assert program.first('atom_length("str", N).')["N"] == 3
    with pytest.raises(InstantiationError):
        program.ask("atom_length(X, N).")
    with pytest.raises(EvaluationError):
        program.ask("atom_length(42, N).")


def test_atom_concat(program):
    assert program.first("atom_concat(clone, '-001', K).")["K"] == "clone-001"
    assert program.ask("atom_concat(a, b, ab).")
    with pytest.raises(InstantiationError):
        program.ask("atom_concat(X, b, ab).")


def test_instantiation_errors_for_unbound_lists(program):
    for goal in ("nth0(0, L, X).", "last(L, X).", "sort(L, S).",
                 "sum_list(L, S)."):
        with pytest.raises(InstantiationError):
            program.ask(goal)
