"""The backend registry: registration, lookup, capability queries.

Also pins the PR's structural acceptance criterion: outside
``repro.storage.registry`` no source module may *enumerate* backend
names — the registry is the single place the server-version list
exists, so the AST sweep at the bottom fails the moment someone
hard-codes ``("OStore", "Texas", ...)`` in harness or CLI code again.
"""

import ast
import os

import pytest

import repro
from repro.errors import StorageError, UnknownBackendError
from repro.benchmark.config import SERVER_ORDER
from repro.storage import registry
from repro.storage.base import StorageManager
from repro.storage.memstore import MainMemorySM
from repro.storage.mmapstore import MMapStoreSM
from repro.storage.objectstore import ObjectStoreSM


def test_the_six_versions_are_registered_in_order():
    assert registry.backend_names() == (
        "OStore", "Texas+TC", "Texas", "OStore-mm", "Texas-mm", "mmap",
    )


def test_server_order_is_derived_from_the_registry():
    assert SERVER_ORDER == registry.backend_names()


def test_backend_lookup_returns_info():
    info = registry.backend("OStore")
    assert info.cls is ObjectStoreSM
    assert info.persistent and info.concurrent and info.segments
    assert info.crash_matrix


def test_unknown_backend_error_lists_known_names():
    with pytest.raises(UnknownBackendError) as excinfo:
        registry.backend("GemStone")
    assert excinfo.value.name == "GemStone"
    assert excinfo.value.known == registry.backend_names()
    for name in registry.backend_names():
        assert name in str(excinfo.value)


def test_capability_filters():
    names = lambda **kw: [info.name for info in registry.backends(**kw)]
    assert names() == list(registry.backend_names())
    assert names(persistent=True) == ["OStore", "Texas+TC", "Texas", "mmap"]
    assert names(persistent=False) == ["OStore-mm", "Texas-mm"]
    assert names(concurrent=True) == ["OStore", "mmap"]
    assert names(crash_matrix=True) == ["OStore", "Texas+TC", "Texas", "mmap"]
    assert names(segments=True, persistent=True) == [
        "OStore", "Texas+TC", "mmap",
    ]
    assert names(persistent=False, crash_matrix=True) == []


def test_duplicate_registration_rejected():
    with pytest.raises(StorageError, match="already registered"):
        registry.register_backend("OStore", order=99)(ObjectStoreSM)


def test_name_mismatch_rejected():
    with pytest.raises(StorageError, match="has name"):
        registry.register_backend("NotItsName", order=99)(ObjectStoreSM)


def test_registration_roundtrip_and_capability_flags():
    class ProbeSM(MainMemorySM):
        name = "probe"

    try:
        returned = registry.register_backend(
            "probe", order=999, description="test probe"
        )(ProbeSM)
        assert returned is ProbeSM
        info = registry.backend("probe")
        assert info.cls is ProbeSM
        assert not info.persistent and not info.crash_matrix
        assert registry.backend_names()[-1] == "probe"
        built = info.make(None, 8, 0)
        assert isinstance(built, ProbeSM)
        built.close()
    finally:
        registry._REGISTRY.pop("probe", None)
    with pytest.raises(UnknownBackendError):
        registry.backend("probe")


def test_factory_builds_each_backend(tmp_path):
    for info in registry.backends():
        path = os.path.join(tmp_path, info.name.replace("+", "_") + ".db")
        sm = info.make(path, 16, 4)
        assert isinstance(sm, StorageManager)
        assert sm.name == info.name
        oid = sm.allocate_write({"probe": info.name})
        sm.commit()
        assert sm.read(oid) == {"probe": info.name}
        sm.close()
        assert os.path.exists(path) == info.persistent


def test_create_by_name(tmp_path):
    sm = registry.create("mmap", os.path.join(tmp_path, "m.db"))
    assert isinstance(sm, MMapStoreSM)
    sm.close()
    with pytest.raises(UnknownBackendError):
        registry.create("Versant")


# -- the structural acceptance check ----------------------------------------


def _container_strings(tree: ast.AST):
    """String constants inside list/tuple/set/dict literals."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            elements = node.elts
        elif isinstance(node, ast.Dict):
            elements = [key for key in node.keys if key is not None]
        else:
            continue
        group = [
            element.value
            for element in elements
            if isinstance(element, ast.Constant)
            and isinstance(element.value, str)
        ]
        if group:
            yield group


def test_no_module_outside_the_registry_enumerates_backend_names():
    """No source module may hold 2+ backend names in one literal.

    A single name is a backend's own identity (``name = "mmap"`` in its
    module); two or more names in one list/tuple/set/dict literal is an
    enumeration of the server-version set, which belongs to the
    registry alone.
    """
    names = set(registry.backend_names())
    src_root = os.path.dirname(os.path.abspath(repro.__file__))
    offenders = []
    for dirpath, _dirnames, filenames in os.walk(src_root):
        for filename in sorted(filenames):
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, encoding="utf-8") as handle:
                tree = ast.parse(handle.read(), filename=path)
            for group in _container_strings(tree):
                hits = names.intersection(group)
                if len(hits) >= 2:
                    offenders.append((os.path.relpath(path, src_root),
                                      sorted(hits)))
    assert not offenders, (
        "backend-name enumerations outside the registry: "
        f"{offenders}"
    )
