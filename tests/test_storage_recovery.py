"""Tests for checkpointing, crash recovery and vacuum."""

import os

import pytest

from repro.storage import ObjectStoreSM, TexasSM
from repro.storage.integrity import verify


def _crash_and_reopen(cls, path, **kwargs):
    """Reopen a store whose previous instance was never closed."""
    return cls(path=path, **kwargs)


@pytest.mark.parametrize("cls", [ObjectStoreSM, TexasSM])
def test_crash_loses_nothing_before_checkpoint(cls, tmp_path):
    path = os.path.join(tmp_path, "db")
    sm = cls(path=path, checkpoint_every=1)  # checkpoint every commit
    oids = []
    for i in range(10):
        oids.append(sm.allocate_write({"i": i}))
        sm.commit()
    # crash: no close()
    recovered = _crash_and_reopen(cls, path)
    for i, oid in enumerate(oids):
        assert recovered.read(oid) == {"i": i}
    verify(recovered).raise_if_bad()
    recovered.close()


@pytest.mark.parametrize("cls", [ObjectStoreSM, TexasSM])
def test_crash_loses_at_most_checkpoint_window(cls, tmp_path):
    path = os.path.join(tmp_path, "db")
    sm = cls(path=path, checkpoint_every=5)
    oids = []
    for i in range(12):  # checkpoints after commits 5 and 10
        oids.append(sm.allocate_write({"i": i}))
        sm.commit()
    recovered = _crash_and_reopen(cls, path)
    survivors = [oid for oid in oids if recovered.exists(oid)]
    assert len(survivors) == 10  # everything up to the last checkpoint
    assert survivors == oids[:10]
    recovered.close()


def test_crash_without_checkpoints_recovers_to_empty(tmp_path):
    path = os.path.join(tmp_path, "db")
    sm = ObjectStoreSM(path=path)  # checkpoint_every=0
    sm.allocate_write("volatile")
    sm.commit()
    recovered = _crash_and_reopen(ObjectStoreSM, path)
    assert recovered.object_count() == 0
    recovered.close()


def test_vacuum_reclaims_orphans_after_crash(tmp_path):
    path = os.path.join(tmp_path, "db")
    sm = ObjectStoreSM(path=path, checkpoint_every=3)
    for i in range(7):  # checkpoint after 3 and 6; commit 7 orphaned
        sm.allocate_write({"i": i, "pad": "x" * 200})
        sm.commit()
    recovered = _crash_and_reopen(ObjectStoreSM, path)
    report = verify(recovered)
    assert not report.ok  # orphan from the lost commit
    outcome = recovered.recover()
    assert outcome["vacuumed_slots"] >= 1
    verify(recovered).raise_if_bad()
    # reclaimed space is reusable
    oid = recovered.allocate_write({"fresh": True})
    assert recovered.read(oid) == {"fresh": True}
    recovered.close()


def test_vacuum_on_clean_store_is_a_noop():
    sm = ObjectStoreSM()
    for i in range(20):
        sm.allocate_write(i)
    assert sm.vacuum_orphans() == 0
    sm.close()


def test_explicit_checkpoint_bounds_loss(tmp_path):
    path = os.path.join(tmp_path, "db")
    sm = ObjectStoreSM(path=path)
    keep = sm.allocate_write("keep")
    sm.commit()
    sm.checkpoint()
    lose = sm.allocate_write("lose")
    sm.commit()
    recovered = _crash_and_reopen(ObjectStoreSM, path)
    assert recovered.read(keep) == "keep"
    assert not recovered.exists(lose)
    recovered.close()


def test_clean_close_always_persists_everything(tmp_path):
    path = os.path.join(tmp_path, "db")
    sm = ObjectStoreSM(path=path)  # no checkpointing at all
    oid = sm.allocate_write("durable")
    sm.close()
    reopened = ObjectStoreSM(path=path)
    assert reopened.read(oid) == "durable"
    reopened.close()


def test_recover_reconciles_post_checkpoint_churn(tmp_path):
    """Deletes and moves after the last checkpoint leave dangling
    directory entries; recover() must drop them and pass verify."""
    path = str(tmp_path / "churn.db")
    sm = ObjectStoreSM(path=path, checkpoint_every=1)
    oids = [sm.allocate_write({"i": i, "pad": "x" * 100}) for i in range(20)]
    sm.commit()  # checkpoint: all 20 known
    sm.checkpoint_every = 0  # no more checkpoints
    sm.delete(oids[3])                          # dangling after crash
    # fresh goes into page 0's free space (a checkpoint-known page), so
    # after the crash it is an orphan slot vacuum can actually see;
    # orphans on post-checkpoint pages are reclaimed by page-id reuse.
    fresh = sm.allocate_write({"new": True})
    sm.write(oids[4], {"moved": "y" * 3000})    # moves to a new page
    sm.commit()
    # crash
    recovered = ObjectStoreSM(path=path)
    report = verify(recovered)
    assert not report.ok  # the torn state is detectable...
    outcome = recovered.recover()
    verify(recovered).raise_if_bad()  # ...and reconcilable
    assert outcome["dropped_objects"] >= 1
    assert outcome["vacuumed_slots"] >= 1
    # untouched objects survived intact
    for i, oid in enumerate(oids):
        if i in (3, 4):
            continue
        assert recovered.read(oid) == {"i": i, "pad": "x" * 100}
    assert not recovered.exists(fresh)
    recovered.close()


def test_verify_detects_deliberately_torn_page(tmp_path):
    """A page damaged behind the store's back (half a write, bad sector)
    must fail verify() with a torn-page problem, and recover() must
    discard the page and converge to a verifiable store."""
    from repro.storage.page import PAGE_SIZE

    path = os.path.join(tmp_path, "tear.db")
    sm = ObjectStoreSM(path=path, checkpoint_every=1)
    oids = [sm.allocate_write({"i": i, "pad": "x" * 500}) for i in range(30)]
    sm.commit()
    sm.close()
    with open(path, "r+b") as handle:  # tear page 0 mid-body
        handle.seek(PAGE_SIZE // 2)
        handle.write(b"\xde\xad" * 64)
    reopened = ObjectStoreSM(path=path)
    report = verify(reopened)
    assert not report.ok
    assert any("torn" in p or "trailer" in p for p in report.problems)
    outcome = reopened.recover()
    assert outcome["dropped_objects"] >= 1  # page 0's residents are gone
    verify(reopened).raise_if_bad()
    survivors = [oid for oid in oids if reopened.exists(oid)]
    for oid in survivors:  # the undamaged pages still read perfectly
        record = reopened.read(oid)
        assert record["pad"] == "x" * 500
    reopened.close()
    # the repaired store reopens clean
    final = ObjectStoreSM(path=path)
    verify(final).raise_if_bad()
    final.close()


def test_recover_drops_roots_of_lost_objects(tmp_path):
    path = str(tmp_path / "roots.db")
    sm = ObjectStoreSM(path=path, checkpoint_every=1)
    doomed = sm.allocate_write("doomed")
    sm.set_root("entry", doomed)
    sm.commit()  # checkpoint with the root
    sm.checkpoint_every = 0
    sm.delete(doomed)
    sm.commit()
    recovered = ObjectStoreSM(path=path)
    outcome = recovered.recover()
    assert outcome["dropped_roots"] == 1
    assert recovered.get_root("entry") is None
    verify(recovered).raise_if_bad()
    recovered.close()
