"""Unit tests for the synthetic BLAST hit generator."""

from repro.benchmark import blast
from repro.util.rng import DeterministicRng


def test_hit_fields_are_blast_shaped():
    rng = DeterministicRng(1)
    hit = blast.generate_hit(rng, query_length=400)
    assert set(hit) == {
        "accession", "database", "score", "expect",
        "align_start", "align_length", "identity",
    }
    assert hit["database"] in blast.DATABASES
    assert 0 < hit["align_length"] <= 400
    assert hit["align_start"] >= 1
    assert 0.5 <= hit["identity"] <= 1.0
    assert hit["expect"] >= 0


def test_hit_list_sorted_by_score():
    rng = DeterministicRng(2)
    hits = blast.generate_hit_list(rng, mean_hits=30, max_hits=100)
    scores = [hit["score"] for hit in hits]
    assert scores == sorted(scores, reverse=True)


def test_hit_count_bounds():
    rng = DeterministicRng(3)
    for _ in range(200):
        count = blast.hit_count(rng, mean=20, maximum=50)
        assert 0 <= count <= 50
    assert blast.hit_count(rng, mean=0, maximum=50) == 0


def test_hit_count_is_heavy_tailed():
    rng = DeterministicRng(4)
    counts = [blast.hit_count(rng, mean=20, maximum=1000) for _ in range(500)]
    mean = sum(counts) / len(counts)
    assert max(counts) > mean * 3, "expect a fat right tail"


def test_deterministic_given_seed():
    a = blast.generate_hit_list(DeterministicRng(7), mean_hits=10)
    b = blast.generate_hit_list(DeterministicRng(7), mean_hits=10)
    assert a == b


def test_summarize():
    assert blast.summarize([]) == {
        "n_hits": 0, "best_score": None, "best_accession": None,
    }
    hits = blast.generate_hit_list(DeterministicRng(9), mean_hits=15)
    if hits:
        summary = blast.summarize(hits)
        assert summary["n_hits"] == len(hits)
        assert summary["best_score"] == hits[0]["score"]
