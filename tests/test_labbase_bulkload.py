"""Tests for the bulk loader: identical semantics, fewer writes."""

import pytest

from repro.errors import DuplicateKeyError, LabBaseError, UnknownClassError
from repro.labbase import LabBase, LabClock
from repro.labbase.bulkload import BulkLoader, BulkRef
from repro.storage import OStoreMM, ObjectStoreSM


def _schema(db):
    db.define_material_class("clone")
    db.define_step_class("s", ["a", "b"], ["clone"])


def test_basic_bulk_load():
    db = LabBase(OStoreMM())
    _schema(db)
    loader = BulkLoader(db)
    ref = loader.add_material("clone", "c-1", 1, state="arrived")
    loader.add_step("s", 2, [ref], {"a": 10})
    loader.add_step("s", 3, [ref], {"a": 20, "b": "x"})
    oids = loader.flush()
    oid = oids[ref]
    assert db.lookup("clone", "c-1") == oid
    assert db.most_recent(oid, "a") == 20
    assert db.state_of(oid) == "arrived"
    assert db.in_state("arrived") == [oid]
    assert db.history_length(oid) == 2
    assert db.count_materials("clone") == 1
    assert db.count_steps("s") == 2


def test_bulk_equals_api_record_for_record():
    """The loader must be observationally identical to API calls."""
    operations = [
        ("mat", "c-1", "arrived"), ("mat", "c-2", "arrived"),
        ("step", ["c-1"], 10, {"a": 1}),
        ("step", ["c-2", "c-1"], 20, {"b": "shared"}),
        ("step", ["c-1"], 5, {"a": 0}),     # out-of-order valid time
        ("mat", "c-3", None),
        ("step", ["c-3"], 30, {"a": 3, "b": "z"}),
    ]

    api_db = LabBase(OStoreMM())
    _schema(api_db)
    api_oids = {}
    for op in operations:
        if op[0] == "mat":
            api_oids[op[1]] = api_db.create_material("clone", op[1], 1, state=op[2])
        else:
            api_db.record_step("s", op[2], [api_oids[k] for k in op[1]], op[3])

    bulk_db = LabBase(OStoreMM())
    _schema(bulk_db)
    loader = BulkLoader(bulk_db)
    refs = {}
    for op in operations:
        if op[0] == "mat":
            refs[op[1]] = loader.add_material("clone", op[1], 1, state=op[2])
        else:
            loader.add_step("s", op[2], [refs[k] for k in op[1]], op[3])
    loader.flush()

    for key in ("c-1", "c-2", "c-3"):
        api_oid = api_db.lookup("clone", key)
        bulk_oid = bulk_db.lookup("clone", key)
        assert api_db.current_attributes(api_oid) == \
            bulk_db.current_attributes(bulk_oid), key
        assert api_db.history_length(api_oid) == bulk_db.history_length(bulk_oid)
        assert api_db.state_of(api_oid) == bulk_db.state_of(bulk_oid)
        # full history, by valid time
        api_history = [s["valid_time"] for _o, s in api_db.material_history(api_oid)]
        bulk_history = [s["valid_time"] for _o, s in bulk_db.material_history(bulk_oid)]
        assert api_history == bulk_history
    assert api_db.catalog.material_counts == bulk_db.catalog.material_counts
    assert api_db.catalog.step_counts == bulk_db.catalog.step_counts
    assert api_db.sets.state_census() == bulk_db.sets.state_census()


def test_bulk_uses_fewer_object_writes():
    def load(bulk: bool) -> int:
        db = LabBase(OStoreMM())
        _schema(db)
        before = db.storage.stats.objects_written
        if bulk:
            loader = BulkLoader(db)
            refs = [
                loader.add_material("clone", f"c-{i}", 1, state="arrived")
                for i in range(50)
            ]
            for ref in refs:
                loader.add_step("s", 2, [ref], {"a": 1})
            loader.flush()
        else:
            for i in range(50):
                oid = db.create_material("clone", f"c-{i}", 1, state="arrived")
                db.record_step("s", 2, [oid], {"a": 1})
        return db.storage.stats.objects_written - before

    assert load(bulk=True) < load(bulk=False) / 1.5


def test_bulk_steps_on_existing_materials():
    db = LabBase(OStoreMM())
    _schema(db)
    existing = db.create_material("clone", "old", 1)
    db.record_step("s", 5, [existing], {"a": "before"})
    loader = BulkLoader(db)
    loader.add_step("s", 10, [existing], {"a": "after"})
    loader.flush()
    assert db.most_recent(existing, "a") == "after"
    assert db.history_length(existing) == 2


def test_bulk_history_chunks_chain_correctly():
    db = LabBase(OStoreMM(), history_chunk=4)
    _schema(db)
    loader = BulkLoader(db)
    ref = loader.add_material("clone", "c", 0)
    for valid_time in range(1, 11):  # 10 steps -> 3 chunks of <=4
        loader.add_step("s", valid_time, [ref], {"a": valid_time})
    oids = loader.flush()
    oid = oids[ref]
    times = [s["valid_time"] for _o, s in db.material_history(oid)]
    assert times == list(range(10, 0, -1))
    # subsequent API appends continue the same chain
    db.record_step("s", 11, [oid], {"a": 11})
    assert db.history_length(oid) == 11
    assert db.most_recent(oid, "a") == 11


def test_bulk_validation_errors():
    db = LabBase(OStoreMM())
    _schema(db)
    loader = BulkLoader(db)
    with pytest.raises(UnknownClassError):
        loader.add_material("plasmid", "p", 1)
    with pytest.raises(Exception):
        loader.add_step("s", 1, [], {"undeclared": 1})
    loader.add_material("clone", "dup", 1)
    with pytest.raises(DuplicateKeyError):
        loader.add_material("clone", "dup", 1)


def test_bulk_duplicate_against_existing_key_detected_at_flush():
    db = LabBase(OStoreMM())
    _schema(db)
    db.create_material("clone", "taken", 1)
    loader = BulkLoader(db)
    loader.add_material("clone", "taken", 2)
    with pytest.raises(DuplicateKeyError):
        loader.flush()


def test_loader_single_use():
    db = LabBase(OStoreMM())
    _schema(db)
    loader = BulkLoader(db)
    loader.add_material("clone", "c", 1)
    loader.flush()
    with pytest.raises(LabBaseError, match="flushed"):
        loader.add_material("clone", "d", 2)
    with pytest.raises(LabBaseError, match="flushed"):
        loader.flush()


def test_bulk_load_persists(tmp_path):
    sm = ObjectStoreSM(path=str(tmp_path / "bulk.db"))
    db = LabBase(sm)
    _schema(db)
    loader = BulkLoader(db)
    ref = loader.add_material("clone", "c-1", 1, state="arrived")
    loader.add_step("s", 2, [ref], {"a": 42})
    loader.flush()
    sm.close()
    db2 = LabBase(ObjectStoreSM(path=str(tmp_path / "bulk.db")))
    assert db2.most_recent(db2.lookup("clone", "c-1"), "a") == 42
    db2.storage.close()
