"""The concurrency sanitizer, both prongs.

The acceptance story: deliberately reordering two lock acquisitions must
be caught twice — statically by LF08 on the source, and at runtime by
the lock-order watchdog watching the same ranks.  Around that core:
watchdog unit behavior, the PR 6 rollback-leak regression trap, stale
``lint: ignore`` detection, and the schedule fuzzer's serial-equivalence
sweep across every registered backend.
"""

import threading

import pytest

from repro.analysis import main as lint_main
from repro.analysis.core import (
    Project,
    SourceModule,
    run_rules,
    stale_ignores,
)
from repro.analysis.main import default_root
from repro.analysis.rules import ALL_RULES, rules_by_id
from repro.errors import SanitizerError
from repro.obs.tracing import LOCK_RANKS, LOCK_SITES, UnitTracer
from repro.obs.watchdog import LockOrderWatchdog
from repro.server.fuzz import (
    ScheduleFuzzer,
    fuzz_backend,
    make_schedule,
)
from repro.storage import registry
from repro.util.rng import DeterministicRng

import os


def _shipped_source(*parts):
    path = os.path.join(default_root(), *parts)
    return open(path, encoding="utf-8").read()


# ---------------------------------------------------------------------------
# the reorder acceptance: one bug, two detectors
# ---------------------------------------------------------------------------

_RANK_TABLE = (
    "# module: repro.obs.tracing\n"
    "LOCK_RANKS = {'gate': 0, 'mutex': 10}\n"
    "LOCK_SITES = {'gate': 'Server._gate', 'mutex': 'Server._mutex'}\n"
)

_SERVER_TEMPLATE = (
    "# module: repro.server.reorder_demo\n"
    "import threading\n"
    "\n"
    "\n"
    "class Server:\n"
    "    def __init__(self):\n"
    "        self._gate = threading.Lock()\n"
    "        self._mutex = threading.RLock()\n"
    "\n"
    "    def unit(self):\n"
    "        with {outer}:\n"
    "            with {inner}:\n"
    "                return 1\n"
)


def _reorder_findings(outer, inner):
    project = Project(
        [
            SourceModule("tracing.py", _RANK_TABLE),
            SourceModule(
                "server.py",
                _SERVER_TEMPLATE.format(outer=outer, inner=inner),
            ),
        ]
    )
    return run_rules(project, rules_by_id(["LF08"]))


def test_static_prong_accepts_ranked_order():
    assert _reorder_findings("self._gate", "self._mutex") == []


def test_static_prong_flags_the_reorder():
    findings = _reorder_findings("self._mutex", "self._gate")
    assert findings, "swapping the two acquisitions must be flagged"
    assert any("inversion" in f.message for f in findings)


def test_runtime_prong_accepts_ranked_order():
    watchdog = LockOrderWatchdog(ranks={"gate": 0, "mutex": 10})
    gate, mutex = watchdog.lock("gate"), watchdog.rlock("mutex")
    with gate:
        with mutex:
            pass
    assert watchdog.violations() == []
    assert watchdog.edges() == [("gate", "mutex")]


def test_runtime_prong_flags_the_reorder():
    watchdog = LockOrderWatchdog(ranks={"gate": 0, "mutex": 10})
    gate, mutex = watchdog.lock("gate"), watchdog.rlock("mutex")
    with mutex:
        with gate:
            pass
    kinds = {v["kind"] for v in watchdog.violations()}
    assert "rank_inversion" in kinds
    with pytest.raises(SanitizerError):
        watchdog.check()


# ---------------------------------------------------------------------------
# watchdog unit behavior
# ---------------------------------------------------------------------------


def test_watchdog_strict_raises_at_the_acquire():
    watchdog = LockOrderWatchdog(strict=True, ranks={"a": 0, "b": 1})
    a, b = watchdog.lock("a"), watchdog.lock("b")
    with b:
        with pytest.raises(SanitizerError):
            a.acquire()


def test_watchdog_refuses_unranked_names():
    watchdog = LockOrderWatchdog(ranks={"a": 0})
    with pytest.raises(SanitizerError):
        watchdog.lock("unregistered")


def test_watchdog_detects_cross_thread_cycles():
    watchdog = LockOrderWatchdog(ranks={"a": 0, "b": 0})
    a, b = watchdog.lock("a"), watchdog.lock("b")

    def forward():
        with a:
            with b:
                pass

    def backward():
        with b:
            with a:
                pass

    for target in (forward, backward):
        thread = threading.Thread(target=target)
        thread.start()
        thread.join()
    kinds = {v["kind"] for v in watchdog.violations()}
    assert "cycle" in kinds


def test_watchdog_rlock_reentry_is_not_a_violation():
    watchdog = LockOrderWatchdog(ranks={"m": 0})
    mutex = watchdog.rlock("m")
    with mutex:
        with mutex:
            pass
    assert watchdog.violations() == []


@pytest.mark.parametrize("factory", ["lock", "rlock"])
def test_watchdog_condition_wait_releases_and_restores(factory):
    """Condition.wait over a watched lock must not corrupt the stack.

    Covers both inner kinds: the RLock path forwards the typeshed
    Condition protocol, the plain-Lock path uses the stdlib fallbacks.
    """
    watchdog = LockOrderWatchdog(ranks={"m": 0})
    lock = getattr(watchdog, factory)("m")
    cond = threading.Condition(lock)
    woke = []

    def waiter():
        with lock:
            cond.wait(timeout=2.0)
            woke.append(True)

    thread = threading.Thread(target=waiter)
    thread.start()
    # Nudge the waiter; if it already timed out the join still succeeds.
    with lock:
        cond.notify_all()
    thread.join()
    assert woke == [True]
    assert watchdog.violations() == []
    # The waiter's release/restore kept the books balanced: a fresh
    # acquisition works and counts.
    with lock:
        pass
    assert watchdog.summary()["ok"] is True


def test_watchdog_emits_edges_into_the_trace():
    events = []
    tracer = UnitTracer(sink=None)
    tracer.lock_order = lambda **kw: events.append(kw)  # capture
    watchdog = LockOrderWatchdog(tracer=tracer, ranks={"a": 0, "b": 1})
    a, b = watchdog.lock("a"), watchdog.lock("b")
    for _ in range(2):
        with a:
            with b:
                pass
    # first-seen only: the second pass adds no edge event
    assert events == [{"held": "a", "acquired": "b"}]


def test_lock_tables_agree_with_each_other():
    assert set(LOCK_RANKS) == set(LOCK_SITES)
    ranks = list(LOCK_RANKS.values())
    assert ranks == sorted(ranks) and len(set(ranks)) == len(ranks)


# ---------------------------------------------------------------------------
# the PR 6 regression trap: lock-upgrade rollback leak
# ---------------------------------------------------------------------------


def test_shipped_rollback_restore_is_clean():
    source = _shipped_source("labbase", "sessions.py")
    project = Project([SourceModule("src/repro/labbase/sessions.py", source)])
    assert run_rules(project, rules_by_id(["LF08"])) == []


def test_reintroduced_rollback_leak_is_caught():
    """Deleting the downgrade loop re-creates PR 6's upgrade leak."""
    downgrade_loop = (
        "        for page_id in taken.upgraded:\n"
        "            self._sm.downgrade_page(client, page_id)\n"
    )
    source = _shipped_source("labbase", "sessions.py")
    assert downgrade_loop in source, "regression trap lost its anchor"
    leaky = source.replace(downgrade_loop, "")
    project = Project([SourceModule("src/repro/labbase/sessions.py", leaky)])
    findings = run_rules(project, rules_by_id(["LF08"]))
    assert any("downgrade" in f.message for f in findings)


# ---------------------------------------------------------------------------
# stale-ignore detection
# ---------------------------------------------------------------------------

_IGNORE_DEMO = (
    "# module: repro.storage.demo\n"
    "def f():\n"
    "    try:\n"
    "        pass\n"
    "    # lint: ignore[LF06] -- live: suppresses the handler below\n"
    "    except Exception:\n"
    "        pass\n"
    "    # lint: ignore[LF06] -- stale: suppresses nothing\n"
    "    x = 1\n"
    "    # lint: ignore[LF99] -- unknown rule id\n"
    "    return x\n"
)


def test_stale_and_unknown_ignores_are_flagged():
    project = Project([SourceModule("demo.py", _IGNORE_DEMO)])
    used = set()
    findings = run_rules(project, ALL_RULES, used_suppressions=used)
    assert findings == []  # the live marker suppressed the only finding
    stale = stale_ignores(
        project, ALL_RULES, used, known_ids={r.id for r in ALL_RULES}
    )
    assert [f.line for f in stale] == [8, 10]
    assert "stale suppression" in stale[0].message
    assert "unknown rule id" in stale[1].message
    assert all(f.rule == "LF00" for f in stale)


def test_docstring_mentions_are_not_markers():
    source = (
        "# module: repro.storage.demo\n"
        '"""Docs may cite ``# lint: ignore[LF06]`` without creating '
        'a suppression."""\n'
        "x = 1\n"
    )
    module = SourceModule("demo.py", source)
    assert module.suppression_sites() == ()


def test_shipped_tree_has_no_stale_ignores(capsys):
    assert lint_main(["--check-ignores"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_check_ignores_exit_code(tmp_path, capsys):
    demo = tmp_path / "demo.py"
    demo.write_text(_IGNORE_DEMO)
    assert lint_main([str(demo), "--check-ignores"]) == 1
    out = capsys.readouterr().out
    assert "LF00" in out and "stale suppression" in out


# ---------------------------------------------------------------------------
# the schedule fuzzer
# ---------------------------------------------------------------------------


def test_schedule_is_deterministic_and_complete():
    rng = DeterministicRng(11)
    schedule = make_schedule(3, 5, rng.substream("schedule"))
    again = make_schedule(3, 5, DeterministicRng(11).substream("schedule"))
    assert schedule == again
    assert len(schedule) == 15
    assert all(schedule.count(i) == 5 for i in range(3))
    other = make_schedule(3, 5, DeterministicRng(12).substream("schedule"))
    assert other != schedule  # seeds genuinely vary the interleaving


def test_fuzzer_validates_inputs():
    with pytest.raises(ValueError):
        ScheduleFuzzer(object(), [])
    with pytest.raises(ValueError):
        ScheduleFuzzer(object(), ["s0"], units_per_session=0)


@pytest.mark.parametrize(
    "backend_name",
    registry.backend_names(),
    ids=lambda name: name,
)
def test_fuzzed_schedule_matches_serial_replay(backend_name):
    """The tentpole invariant, per backend: interleaved == serial."""
    for seed in (0, 1):
        watchdog = LockOrderWatchdog()
        report = fuzz_backend(
            backend_name, seed=seed, units_per_session=5, watchdog=watchdog
        )
        assert report.identical, (
            f"{backend_name} seed {seed}: fuzzed database diverged "
            "from the serial replay of its own completion order"
        )
        assert report.watchdog_violations == 0
        assert report.completed_units > 0


def test_fuzz_reports_are_reproducible():
    first = fuzz_backend("OStore", seed=9, units_per_session=4)
    second = fuzz_backend("OStore", seed=9, units_per_session=4)
    assert first.fingerprint == second.fingerprint
    assert first.completed_units == second.completed_units


def test_fuzzer_nests_the_gate_under_the_service_mutex():
    """The run itself exercises the ranked gate -> mutex nesting."""
    watchdog = LockOrderWatchdog()
    fuzz_backend("OStore", seed=2, units_per_session=4, watchdog=watchdog)
    assert ("fuzz.gate", "service.mutex") in watchdog.edges()
    assert watchdog.violations() == []
