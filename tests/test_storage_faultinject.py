"""Unit tests for deterministic fault injection."""

import os

import pytest

from repro.errors import InjectedCrashError, StorageError
from repro.storage import FaultInjector, FaultyPageFile, ObjectStoreSM
from repro.storage.disk import PageFile
from repro.storage.faultinject import TORN_WRITE_BYTES
from repro.storage.page import PAGE_SIZE, PAGE_TRAILER_BYTES


def _image(fill: bytes) -> bytes:
    body = fill * ((PAGE_SIZE - PAGE_TRAILER_BYTES) // len(fill))
    return body + b"\0" * (PAGE_SIZE - len(body))


def test_counting_mode_never_crashes():
    injector = FaultInjector()  # crash_after_writes=None
    disk = FaultyPageFile(None, injector)
    for page_id in range(5):
        disk.write_page(page_id, _image(b"a"))
    disk.write_meta({"ok": True})
    assert injector.writes_seen == 6  # page and meta writes both count
    assert not injector.dead


def test_crash_at_write_point_zero_loses_the_write():
    injector = FaultInjector(crash_after_writes=0)
    disk = FaultyPageFile(None, injector)
    with pytest.raises(InjectedCrashError):
        disk.write_page(0, _image(b"a"))
    assert injector.dead


def test_crash_after_n_writes_is_deterministic():
    injector = FaultInjector(crash_after_writes=3)
    disk = FaultyPageFile(None, injector)
    for page_id in range(3):
        disk.write_page(page_id, _image(b"a"))
    with pytest.raises(InjectedCrashError):
        disk.write_page(3, _image(b"b"))
    # page 3 never landed
    assert disk.page_count == 3


def test_dead_store_refuses_all_io():
    injector = FaultInjector(crash_after_writes=1)
    disk = FaultyPageFile(None, injector)
    disk.write_page(0, _image(b"a"))
    with pytest.raises(InjectedCrashError):
        disk.write_page(1, _image(b"b"))
    with pytest.raises(InjectedCrashError):
        disk.read_page(0)
    with pytest.raises(InjectedCrashError):
        disk.read_meta()
    with pytest.raises(InjectedCrashError):
        disk.write_meta({})


def test_torn_write_leaves_detectable_half_image(tmp_path):
    path = os.path.join(tmp_path, "torn.db")
    injector = FaultInjector(crash_after_writes=1, torn_write=True)
    disk = FaultyPageFile(path, injector)
    disk.write_page(0, _image(b"a"))
    with pytest.raises(InjectedCrashError):
        disk.write_page(0, _image(b"b"))  # overwrite tears
    disk.close()
    # the reopened plain store must refuse the torn page, loudly
    reopened = PageFile(path)
    with pytest.raises(StorageError, match="torn|trailer"):
        reopened.read_page(0)
    # and the front half really is the new image, the back half the old
    with open(path, "rb") as handle:
        raw = handle.read(PAGE_SIZE)
    assert raw[:TORN_WRITE_BYTES].startswith(b"b")
    assert raw[TORN_WRITE_BYTES:TORN_WRITE_BYTES + 1] == b"a"
    reopened.close()


def test_torn_write_on_fresh_page_has_no_trailer(tmp_path):
    path = os.path.join(tmp_path, "fresh.db")
    injector = FaultInjector(crash_after_writes=0, torn_write=True)
    disk = FaultyPageFile(path, injector)
    with pytest.raises(InjectedCrashError):
        disk.write_page(0, _image(b"a"))
    disk.close()
    reopened = PageFile(path)
    with pytest.raises(StorageError, match="trailer"):
        reopened.read_page(0)
    reopened.close()


def test_meta_crash_keeps_old_blob(tmp_path):
    path = os.path.join(tmp_path, "meta.db")
    injector = FaultInjector(crash_after_writes=1)
    disk = FaultyPageFile(path, injector)
    disk.write_meta({"v": 1})
    with pytest.raises(InjectedCrashError):
        disk.write_meta({"v": 2})
    disk.close()
    reopened = PageFile(path)
    assert reopened.read_meta() == {"v": 1}
    reopened.close()


def test_manager_accepts_injector(tmp_path):
    path = os.path.join(tmp_path, "sm.db")
    injector = FaultInjector()
    sm = ObjectStoreSM(path=path, checkpoint_every=1, fault_injector=injector)
    oid = sm.allocate_write({"x": 1})
    sm.commit()
    assert injector.writes_seen > 0
    sm.close()
    reopened = ObjectStoreSM(path=path)
    assert reopened.read(oid) == {"x": 1}
    reopened.verify().raise_if_bad()
    reopened.close()


def test_manager_crash_mid_commit_is_loud(tmp_path):
    path = os.path.join(tmp_path, "crash.db")
    injector = FaultInjector(crash_after_writes=0)
    sm = ObjectStoreSM(path=path, checkpoint_every=1, fault_injector=injector)
    sm.allocate_write({"x": 1})
    with pytest.raises(InjectedCrashError):
        sm.commit()
