"""Unit tests for the parser."""

import pytest

from repro.errors import ParseError
from repro.query import ast
from repro.query.parser import parse_program, parse_query, parse_term


def test_fact_and_rule():
    rules, queries = parse_program("p(a). q(X) <- p(X).")
    assert len(rules) == 2 and not queries
    fact, rule = rules
    assert fact.is_fact
    assert fact.head.functor == "p"
    assert rule.head.functor == "q"
    assert rule.body[0].functor == "p"


def test_both_arrows_accepted():
    rules, _ = parse_program("a <- b. c :- d.")
    assert all(len(rule.body) == 1 for rule in rules)


def test_embedded_queries_returned():
    rules, queries = parse_program("p(a). ?- p(X), p(Y).")
    assert len(queries) == 1
    assert len(queries[0]) == 2


def test_variables_shared_within_clause():
    rules, _ = parse_program("same(X, X).")
    head = rules[0].head
    assert head.args[0] is head.args[1]


def test_variables_not_shared_across_clauses():
    rules, _ = parse_program("p(X). q(X).")
    assert rules[0].head.args[0] is not rules[1].head.args[0]


def test_anonymous_variables_are_fresh():
    rules, _ = parse_program("p(_, _).")
    first, second = rules[0].head.args
    assert first != second


def test_atoms_vs_strings_distinct():
    term = parse_term("f(abc, \"abc\")")
    atom_arg, string_arg = term.args
    assert isinstance(atom_arg.value, ast.Sym)
    assert not isinstance(string_arg.value, ast.Sym)


def test_list_syntax():
    term = parse_term("[1, 2, 3]")
    assert ast.term_to_python(term) == [1, 2, 3]
    assert parse_term("[]") == ast.EMPTY_LIST


def test_list_with_tail():
    term = parse_term("[H | T]")
    assert term.functor == "."
    assert isinstance(term.args[0], ast.Var)
    assert isinstance(term.args[1], ast.Var)


def test_nested_structures():
    term = parse_term("point(coords(1, 2), [a, b])")
    assert term.functor == "point"
    assert term.args[0].functor == "coords"


def test_arithmetic_precedence():
    # 1 + 2 * 3 parses as +(1, *(2, 3))
    term = parse_term("1 + 2 * 3")
    assert term.functor == "+"
    assert term.args[1].functor == "*"


def test_parenthesized_expression():
    term = parse_term("(1 + 2) * 3")
    assert term.functor == "*"
    assert term.args[0].functor == "+"


def test_comparison_builds_struct():
    goals = parse_query("X =< 3 + 1.")
    goal = goals[0]
    assert goal.functor == "=<"
    assert goal.args[1].functor == "+"


def test_is_expression():
    goals = parse_query("Y is X mod 2.")
    assert goals[0].functor == "is"
    assert goals[0].args[1].functor == "mod"


def test_negative_number_literal():
    assert parse_term("-5") == ast.Const(-5)
    term = parse_term("-X")
    assert term.functor == "-" and term.args[0] == ast.Const(0)


def test_negation_as_failure():
    goals = parse_query("\\+ p(X).")
    assert isinstance(goals[0], ast.Neg)
    assert goals[0].goal.functor == "p"


def test_pair_syntax_for_results():
    """record_step's attr = value pairs parse as '='/2 structs."""
    term = parse_term("[quality = 0.9, sequence = \"ACGT\"]")
    pairs = list(ast.iter_list(term))
    assert pairs[0].functor == "=" and pairs[0].args[1] == ast.Const(0.9)


def test_clause_head_must_be_predicate():
    with pytest.raises(ParseError):
        parse_program("42 <- p.")


def test_missing_dot_rejected():
    with pytest.raises(ParseError):
        parse_program("p(a) q(b).")


def test_trailing_garbage_in_query_rejected():
    with pytest.raises(ParseError):
        parse_query("p(X). extra")


def test_unbalanced_parens_rejected():
    with pytest.raises(ParseError):
        parse_term("f(a, b")


def test_query_with_optional_prefix_and_dot():
    assert parse_query("?- p(X).") == parse_query("p(X)")


def test_rule_repr_round_trips_through_parser():
    rules, _ = parse_program("anc(X, Y) <- par(X, Z), anc(Z, Y).")
    text = repr(rules[0])
    reparsed, _ = parse_program(text)
    assert repr(reparsed[0]) == text
