"""Soak test: a larger end-to-end run with every invariant checked.

Slower than the unit tests (a few seconds) but still in the default
suite: it is the closest thing to "run the whole paper" in one test.
"""

from repro.benchmark import BenchmarkConfig, LabFlowWorkload
from repro.benchmark.analysis import check_shapes, failed_checks, render_checks
from repro.benchmark import run_comparison
from repro.labbase import Chronicle, LabBase
from repro.storage import ObjectStoreSM
from repro.storage.integrity import verify
from repro.storage.report import segment_stats


def test_soak_single_server(tmp_path):
    """One bigger run on the flagship configuration, fully validated."""
    config = BenchmarkConfig(
        clones_per_interval=20,
        intervals=(0.5, 1.0),
        db_dir=str(tmp_path),
        buffer_pages=96,
    )
    sm = ObjectStoreSM(
        path=f"{tmp_path}/soak.db", buffer_pages=config.buffer_pages,
        checkpoint_every=50,
    )
    db = LabBase(sm)
    workload = LabFlowWorkload(db, config)
    workload.run_all()
    workload.drain()

    # 1. physical integrity
    verify(sm).raise_if_bad()

    # 2. logical integrity: counters match scans
    workload.check_integrity()

    # 3. every clone completed with the full attribute set
    done = db.in_state("clone_done")
    assert len(done) == config.total_clones()
    for oid in done:
        attrs = db.current_attributes(oid)
        assert {"contig", "hits", "map_position"} <= set(attrs), attrs.keys()

    # 4. chronicle totals agree with catalog counters
    profiles = {p.class_name: p.executions
                for p in Chronicle(db).step_profiles()}
    assert profiles == {
        name: count for name, count in db.catalog.step_counts.items() if count
    }

    # 5. the hot/cold layout holds at this scale too
    stats = segment_stats(sm)
    assert stats[0].name == "labbase.history"

    # 6. survives crash-recovery from the rolling checkpoint
    path = sm._disk.path
    # (no close: simulate the crash)
    recovered = ObjectStoreSM(path=path, buffer_pages=96)
    outcome = recovered.recover()
    verify(recovered).raise_if_bad()
    # recovery reconciles: anything dropped was post-checkpoint churn
    assert outcome["dropped_objects"] < 100
    recovered.close()


def test_soak_comparison_shapes(tmp_path):
    """A mid-scale five-server comparison must satisfy every claim."""
    config = BenchmarkConfig(
        clones_per_interval=12,
        intervals=(0.5, 1.0, 1.5),
        db_dir=str(tmp_path),
        buffer_pages=128,
    )
    comparison = run_comparison(config)
    failures = failed_checks(check_shapes(comparison))
    assert not failures, render_checks(failures)