"""Unit tests for builtin predicates."""

import pytest

from repro.errors import EvaluationError, InstantiationError
from repro.query import Program


@pytest.fixture
def program():
    return Program(text="n(1). n(2). n(3). item(apple, 3). item(pear, 5).")


def test_unify_and_not_unify(program):
    assert program.solutions("X = 5.") == [{"X": 5}]
    assert program.ask("a \\= b.")
    assert not program.ask("a \\= a.")


def test_structural_equality(program):
    assert program.ask("f(1, X) == f(1, X).")
    assert not program.ask("f(1) == f(2).")
    assert program.ask("f(1) \\== f(2).")


def test_is_arithmetic(program):
    assert program.first("X is 2 + 3 * 4.")["X"] == 14
    assert program.first("X is 10 / 4.")["X"] == 2.5
    assert program.first("X is 10 / 5.")["X"] == 2
    assert program.first("X is 7 mod 3.")["X"] == 1
    assert program.first("X is abs(0 - 5).")["X"] == 5
    assert program.first("X is min(2, 9) + max(2, 9).")["X"] == 11


def test_is_errors(program):
    with pytest.raises(InstantiationError):
        program.solutions("X is Y + 1.")
    with pytest.raises(EvaluationError, match="zero"):
        program.solutions("X is 1 / 0.")
    with pytest.raises(EvaluationError):
        program.solutions("X is foo + 1.")


def test_comparisons_evaluate_both_sides(program):
    assert program.ask("2 + 2 >= 4.")
    assert program.ask("2 * 3 =< 7.")
    assert [s["X"] for s in program.solve("n(X), X < 3.")] == [1, 2]


def test_member_enumerates_and_checks(program):
    assert [s["X"] for s in program.solve("member(X, [a, b, c]).")] == ["a", "b", "c"]
    assert program.ask("member(b, [a, b]).")
    assert not program.ask("member(z, [a, b]).")


def test_length(program):
    assert program.first("length([a, b, c], N).")["N"] == 3
    assert program.ask("length([], 0).")
    with pytest.raises(InstantiationError):
        program.solutions("length(L, 3).")


def test_append_all_modes(program):
    assert program.first("append([1], [2, 3], L).")["L"] == [1, 2, 3]
    splits = program.solutions("append(A, B, [1, 2]).")
    assert len(splits) == 3
    assert program.ask("append([1], X, [1, 2]).")


def test_reverse(program):
    assert program.first("reverse([1, 2, 3], R).")["R"] == [3, 2, 1]


def test_between(program):
    assert [s["X"] for s in program.solve("between(2, 5, X).")] == [2, 3, 4, 5]


def test_findall_collects_with_duplicates(program):
    result = program.first("findall(W, item(F, W), Ws).")
    assert result["Ws"] == [3, 5]
    assert program.first("findall(X, n(99), Out).")["Out"] == []


def test_setof_sorts_dedups_and_fails_empty(program):
    program.consult("dup(b). dup(a). dup(b).")
    assert program.first("setof(X, dup(X), S).")["S"] == ["a", "b"]
    assert not program.ask("setof(X, n(99), S).")  # empty -> failure


def test_count_and_sum(program):
    assert program.first("count(n(X), N).")["N"] == 3
    assert program.first("sum(W, item(F, W), Total).")["Total"] == 8
    assert program.first("count(n(99), N).")["N"] == 0


def test_type_tests(program):
    assert program.ask("number(3).")
    assert not program.ask("number(abc).")
    assert not program.ask("number(true).")  # bool is not a number here
    assert program.ask("atom(abc).")
    assert not program.ask("atom(3).")
    assert program.ask("var(X).")
    assert program.ask("X = 1, nonvar(X).")
    assert program.ask("ground(f(1, 2)).")
    assert not program.ask("ground(f(1, Y)).")


def test_once_commits_to_first_solution(program):
    assert program.solutions("once(n(X)).") == [{"X": 1}]


def test_call_meta(program):
    assert program.solutions("G = n(2), call(G).") != []


def test_true_fail(program):
    assert program.ask("true.")
    assert not program.ask("fail.")


def test_write_and_nl_capture_output(program):
    program.ask('write("hello"), nl, write(42).')
    assert program.output_text() == "'hello'\n42"


def test_assert_and_retract_dynamic_facts(program):
    program.ask("assert(extra(1)).")
    program.ask("assert(extra(2)).")
    assert [s["X"] for s in program.solve("extra(X).")] == [1, 2]
    assert program.ask("retract(extra(1)).")
    assert [s["X"] for s in program.solve("extra(X).")] == [2]
    assert not program.ask("retract(extra(99)).")


def test_retract_unifies_and_binds(program):
    program.ask("assert(fact(7)).")
    assert program.first("retract(fact(X)).")["X"] == 7


def test_assert_over_builtin_rejected(program):
    with pytest.raises(EvaluationError, match="builtin"):
        program.ask("assert(member(1, [1])).")
