"""Tests for the command-line interface."""

import os

import pytest

from repro.cli import main


def test_graph_prints_genome_workflow(capsys):
    assert main(["graph"]) == 0
    out = capsys.readouterr().out
    assert "labflow-1-genome-mapping" in out
    assert "determine_sequence" in out


def test_eer_prints_figure(capsys):
    assert main(["eer"]) == 0
    out = capsys.readouterr().out
    assert "involves" in out and "is-a" in out


def test_graph_from_dsl_file(tmp_path, capsys):
    workflow_file = tmp_path / "wf.txt"
    workflow_file.write_text("""
workflow custom
material m key m initial s
step go involves m
    attr x : integer
transition s -> t via go
terminal t
""")
    assert main(["graph", "--workflow", str(workflow_file)]) == 0
    out = capsys.readouterr().out
    assert "custom" in out and "s --[go]--> t" in out


def test_demo_persists_database(tmp_path, capsys):
    db_path = os.path.join(tmp_path, "demo.db")
    assert main(["demo", "--clones", "3", "--db", db_path]) == 0
    out = capsys.readouterr().out
    assert "workflow steps executed" in out
    assert os.path.exists(db_path)


def test_query_against_persisted_db(tmp_path, capsys):
    db_path = os.path.join(tmp_path, "demo.db")
    main(["demo", "--clones", "3", "--db", db_path])
    capsys.readouterr()
    assert main(["query", db_path, "class_count(clone, N)."]) == 0
    out = capsys.readouterr().out
    assert "N = " in out


def test_query_no_solutions_prints_no(tmp_path, capsys):
    db_path = os.path.join(tmp_path, "demo.db")
    main(["demo", "--clones", "2", "--db", db_path])
    capsys.readouterr()
    assert main(["query", db_path, "state(M, never_used_state)."]) == 0
    assert "no" in capsys.readouterr().out


def test_query_limit(tmp_path, capsys):
    db_path = os.path.join(tmp_path, "demo.db")
    main(["demo", "--clones", "4", "--db", db_path])
    capsys.readouterr()
    assert main(["query", db_path, "material(C, K, M).", "--limit", "2"]) == 0
    out = capsys.readouterr().out
    assert "stopped at 2" in out


def test_query_error_reported(tmp_path, capsys):
    db_path = os.path.join(tmp_path, "demo.db")
    main(["demo", "--clones", "2", "--db", db_path])
    capsys.readouterr()
    assert main(["query", db_path, "no_such_predicate(X)."]) == 0
    assert "error" in capsys.readouterr().err


def test_run_single_server(capsys, tmp_path):
    assert main(["run", "--server", "OStore-mm", "--clones", "3"]) == 0
    out = capsys.readouterr().out
    assert "OStore-mm" in out and "elapsed sec" in out


def test_compare_subset(capsys, tmp_path):
    assert main([
        "compare", "--clones", "3", "--db-dir", str(tmp_path),
        "--servers", "OStore", "Texas-mm",
    ]) == 0
    out = capsys.readouterr().out
    assert "Database Server Version" in out
    assert "OStore" in out and "Texas-mm" in out
    assert "Texas+TC" not in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_record_and_replay_round_trip(tmp_path, capsys):
    trace_path = os.path.join(tmp_path, "stream.trace")
    assert main(["record", trace_path, "--clones", "3"]) == 0
    out = capsys.readouterr().out
    assert "recorded" in out and os.path.exists(trace_path)
    assert main([
        "replay", trace_path, "--server", "OStore",
        "--db-dir", os.path.join(tmp_path, "dbs"),
    ]) == 0
    out = capsys.readouterr().out
    assert "replayed" in out and "size (bytes)" in out


def test_replay_onto_memory_server(tmp_path, capsys):
    trace_path = os.path.join(tmp_path, "stream.trace")
    main(["record", trace_path, "--clones", "2"])
    capsys.readouterr()
    assert main(["replay", trace_path, "--server", "Texas-mm"]) == 0
    assert "Texas-mm" in capsys.readouterr().out


def test_shell_runs_queries_and_quits(tmp_path, capsys, monkeypatch):
    db_path = os.path.join(tmp_path, "demo.db")
    main(["demo", "--clones", "2", "--db", db_path])
    capsys.readouterr()
    lines = iter(["class_count(clone, N).", "", "bad syntax here", "quit."])
    monkeypatch.setattr("builtins.input", lambda prompt="": next(lines))
    assert main(["shell", db_path]) == 0
    captured = capsys.readouterr()
    assert "N = " in captured.out
    assert "error" in captured.err  # the bad query reported, shell kept going


def test_verify_clean_database(tmp_path, capsys):
    db_path = os.path.join(tmp_path, "demo.db")
    main(["demo", "--clones", "2", "--db", db_path])
    capsys.readouterr()
    assert main(["verify", db_path]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "checked" in out


def test_verify_then_recover_crashed_database(tmp_path, capsys):
    from repro.storage import ObjectStoreSM

    db_path = os.path.join(tmp_path, "crashed.db")
    sm = ObjectStoreSM(path=db_path, checkpoint_every=1)
    doomed = sm.allocate_write({"kept": False})
    sm.commit()
    sm.checkpoint_every = 0
    sm.delete(doomed)
    sm.commit()
    # crash: no close()
    assert main(["verify", db_path]) == 1
    out = capsys.readouterr().out
    assert "problem" in out and "recover" in out
    assert main(["recover", db_path]) == 0
    out = capsys.readouterr().out
    assert "consistent" in out
    assert main(["verify", db_path]) == 0


def test_verify_missing_file_does_not_create_one(tmp_path, capsys):
    db_path = os.path.join(tmp_path, "nope.db")
    assert main(["verify", db_path]) == 2
    assert "no such database" in capsys.readouterr().err
    assert not os.path.exists(db_path)  # a check must never create state
    assert main(["recover", db_path]) == 2
    assert not os.path.exists(db_path)


def test_verify_never_modifies_the_store(tmp_path, capsys):
    from repro.storage import ObjectStoreSM

    db_path = os.path.join(tmp_path, "frozen.db")
    sm = ObjectStoreSM(path=db_path, checkpoint_every=1)
    sm.allocate_write({"x": 1})
    sm.commit()
    sm.checkpoint_every = 0
    sm.allocate_write({"x": 2})
    sm.commit()  # crash follows: this commit is past the checkpoint
    before = open(db_path, "rb").read(), open(db_path + ".meta", "rb").read()
    main(["verify", db_path])
    capsys.readouterr()
    after = open(db_path, "rb").read(), open(db_path + ".meta", "rb").read()
    assert before == after


def test_shell_handles_eof(tmp_path, capsys, monkeypatch):
    db_path = os.path.join(tmp_path, "demo.db")
    main(["demo", "--clones", "2", "--db", db_path])
    capsys.readouterr()

    def raise_eof(prompt=""):
        raise EOFError

    monkeypatch.setattr("builtins.input", raise_eof)
    assert main(["shell", db_path]) == 0


def test_readahead_flag_parses_on_off_and_window(capsys, tmp_path):
    for flag, window in (("on", None), ("off", 0), ("4", 4)):
        assert main([
            "compare", "--clones", "2", "--db-dir",
            str(tmp_path / f"ra_{flag}"), "--servers", "OStore",
            "--readahead", flag,
        ]) == 0
        capsys.readouterr()


def test_readahead_flag_rejects_garbage():
    with pytest.raises(SystemExit):
        main(["compare", "--clones", "2", "--readahead", "many"])
    with pytest.raises(SystemExit):
        main(["compare", "--clones", "2", "--readahead", "-3"])


def test_lint_clean_tree_exits_zero(capsys):
    assert main(["lint"]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_lint_reports_findings_nonzero(capsys):
    fixture = os.path.join(
        os.path.dirname(__file__), "lint_fixtures", "LF03", "bad_reach_in.py"
    )
    assert main(["lint", fixture]) == 1
    out = capsys.readouterr().out
    assert "LF03" in out and "finding" in out


def test_lint_json_schema(capsys):
    import json

    fixture_dir = os.path.join(
        os.path.dirname(__file__), "lint_fixtures", "LF06"
    )
    assert main(["lint", fixture_dir, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert set(payload) == {"version", "checked_files", "counts", "findings"}
    assert payload["counts"].get("LF06", 0) >= 2


def test_lint_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "LF01" in out and "LF06" in out


def test_lint_rule_subset(capsys):
    fixture = os.path.join(
        os.path.dirname(__file__), "lint_fixtures", "LF03", "bad_reach_in.py"
    )
    assert main(["lint", fixture, "--rules", "LF06"]) == 0
    capsys.readouterr()


def test_serve_smoke_in_memory(capsys):
    assert main(["serve", "--smoke", "3", "--units", "8"]) == 0
    out = capsys.readouterr().out
    assert "serving <in-memory> [OStore] on 127.0.0.1:" in out
    assert "creates: 12" in out  # 3 clients x 4 mix materials
    assert "verify: OK" in out


def test_serve_smoke_persists_database(tmp_path, capsys):
    db_path = str(tmp_path / "served.pages")
    assert main([
        "serve", db_path, "--smoke", "2", "--units", "6", "--group-cap", "4",
    ]) == 0
    capsys.readouterr()
    assert os.path.exists(db_path)
    assert main(["verify", db_path]) == 0
    out = capsys.readouterr().out
    assert "OK" in out
