"""Every shipped example must run clean — they are part of the API.

Each example runs as a subprocess (its own interpreter, like a user
would run it) with arguments chosen to keep the suite fast.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")

#: (script, argv, text that must appear in stdout)
EXAMPLES = [
    ("quickstart.py", [], "current quality"),
    ("genome_lab.py", ["6"], "Finished clones"),
    ("deductive_queries.py", [], "transition rule"),
    ("schema_evolution.py", [], "integrity check passed"),
    ("storage_comparison.py", ["5"], "Database Server Version"),
    ("process_reengineering.py", [], "rework rate"),
    ("multi_user_lab.py", [], "second user refused"),
]


@pytest.mark.parametrize(
    "script,argv,expected", EXAMPLES, ids=[e[0] for e in EXAMPLES]
)
def test_example_runs_clean(script, argv, expected):
    path = os.path.join(EXAMPLES_DIR, script)
    result = subprocess.run(
        [sys.executable, path, *argv],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert expected in result.stdout, result.stdout[-2000:]
