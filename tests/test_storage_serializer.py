"""Unit + property tests for record serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StorageError
from repro.storage import serializer


class _NotPlain:
    pass


def test_round_trip_scalars():
    for value in (None, True, False, 0, -5, 3.25, "text", b"bytes"):
        assert serializer.deserialize(serializer.serialize(value)) == value


def test_round_trip_collections():
    value = {"a": [1, 2, (3, 4)], "b": {"nested": {5, 6}}, 7: "int key"}
    assert serializer.deserialize(serializer.serialize(value)) == value


def test_rejects_class_instances():
    with pytest.raises(StorageError, match="plain data"):
        serializer.serialize(_NotPlain())


def test_rejects_instances_nested_in_collections():
    with pytest.raises(StorageError):
        serializer.serialize({"ok": [1, 2, _NotPlain()]})


def test_rejects_instance_dict_keys():
    with pytest.raises(StorageError):
        serializer.serialize({(1, _NotPlain()): "x"})


def test_rejects_excessive_nesting():
    deep: list = []
    current = deep
    for _ in range(200):
        inner: list = []
        current.append(inner)
        current = inner
    with pytest.raises(StorageError, match="100 levels"):
        serializer.serialize(deep)


def test_corrupt_payload_raises_storage_error():
    with pytest.raises(StorageError, match="corrupt"):
        serializer.deserialize(b"\x00not a pickle")


def test_record_size_matches_serialized_length():
    obj = {"k": "v" * 100}
    assert serializer.record_size(obj) == len(serializer.serialize(obj))


_plain = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**40), max_value=2**40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=30)
    | st.binary(max_size=30),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


@given(_plain)
def test_round_trip_property(obj):
    assert serializer.deserialize(serializer.serialize(obj)) == obj


@given(_plain)
def test_serialization_is_deterministic(obj):
    assert serializer.serialize(obj) == serializer.serialize(obj)


# ---------------------------------------------------------------------------
# the documented grammar, exactly (ISSUE 9 satellite)
# ---------------------------------------------------------------------------


class _IntSubclass(int):
    pass


class _StrSubclass(str):
    pass


def test_accepts_scalar_subclasses():
    # Subclasses survive a pickle round-trip as their subclass, which is
    # all the storage contract promises.
    for value in (_IntSubclass(7), _StrSubclass("x"), True):
        serializer.validate_plain_data(value)
        restored = serializer.deserialize(serializer.serialize(value))
        assert restored == value


def test_accepts_frozenset_containers():
    value = {"tags": frozenset({"a", "b"}), "sets": [frozenset({1, 2})]}
    assert serializer.deserialize(serializer.serialize(value)) == value


def test_accepts_container_dict_keys():
    # Hashable plain data is a legal dict key: tuples and frozensets of
    # plain data pass through the validator.
    value = {
        (1, "pair"): "tuple key",
        frozenset({"a"}): "frozenset key",
        ((1, 2), (3,)): "nested tuple key",
    }
    assert serializer.deserialize(serializer.serialize(value)) == value


_hashable_plain = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**40), max_value=2**40)
    | st.text(max_size=12)
    | st.binary(max_size=12),
    lambda children: st.lists(children, max_size=3).map(tuple)
    | st.frozensets(st.integers(0, 99) | st.text(max_size=6), max_size=3),
    max_leaves=8,
)


@given(st.dictionaries(_hashable_plain, _plain, max_size=4))
def test_container_dict_keys_property(obj):
    """Any hashable-plain-data key round-trips, per the grammar."""
    assert serializer.deserialize(serializer.serialize(obj)) == obj


@given(_plain)
def test_deserialize_accepts_memoryview_and_bytearray(obj):
    payload = serializer.serialize(obj)
    assert serializer.deserialize(memoryview(payload)) == obj
    assert serializer.deserialize(bytearray(payload)) == obj


def test_memoryview_deserialize_is_zero_copy_compatible():
    # The mmap read path hands a slice of a mapped page; a non-trivial
    # offset view must decode without the caller materializing bytes.
    payload = serializer.serialize({"k": list(range(50))})
    padded = b"\xff\xff" + payload
    view = memoryview(padded)[2:]
    assert serializer.deserialize(view) == {"k": list(range(50))}


def test_record_size_skips_validation():
    # Sizing is measurement, not admission: callers size records they
    # already validated, so record_size must not re-walk the structure.
    unvalidated = {"obj": _NotPlain()}
    with pytest.raises(StorageError):
        serializer.serialize(unvalidated)
    assert serializer.record_size(unvalidated) > 0
