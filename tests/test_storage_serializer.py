"""Unit + property tests for record serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import StorageError
from repro.storage import serializer


class _NotPlain:
    pass


def test_round_trip_scalars():
    for value in (None, True, False, 0, -5, 3.25, "text", b"bytes"):
        assert serializer.deserialize(serializer.serialize(value)) == value


def test_round_trip_collections():
    value = {"a": [1, 2, (3, 4)], "b": {"nested": {5, 6}}, 7: "int key"}
    assert serializer.deserialize(serializer.serialize(value)) == value


def test_rejects_class_instances():
    with pytest.raises(StorageError, match="plain data"):
        serializer.serialize(_NotPlain())


def test_rejects_instances_nested_in_collections():
    with pytest.raises(StorageError):
        serializer.serialize({"ok": [1, 2, _NotPlain()]})


def test_rejects_instance_dict_keys():
    with pytest.raises(StorageError):
        serializer.serialize({(1, _NotPlain()): "x"})


def test_rejects_excessive_nesting():
    deep: list = []
    current = deep
    for _ in range(200):
        inner: list = []
        current.append(inner)
        current = inner
    with pytest.raises(StorageError, match="100 levels"):
        serializer.serialize(deep)


def test_corrupt_payload_raises_storage_error():
    with pytest.raises(StorageError, match="corrupt"):
        serializer.deserialize(b"\x00not a pickle")


def test_record_size_matches_serialized_length():
    obj = {"k": "v" * 100}
    assert serializer.record_size(obj) == len(serializer.serialize(obj))


_plain = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**40), max_value=2**40)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=30)
    | st.binary(max_size=30),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20,
)


@given(_plain)
def test_round_trip_property(obj):
    assert serializer.deserialize(serializer.serialize(obj)) == obj


@given(_plain)
def test_serialization_is_deterministic(obj):
    assert serializer.serialize(obj) == serializer.serialize(obj)
