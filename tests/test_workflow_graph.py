"""Unit tests for workflow-graph construction and validation."""

import pytest

from repro.errors import InvalidWorkflowError
from repro.workflow.graph import WorkflowGraph
from repro.workflow.spec import (
    AttributeSpec,
    MaterialSpec,
    StepSpec,
    Transition,
    ValueKind,
    WorkflowSpec,
)


def _spec(**overrides) -> WorkflowSpec:
    base = dict(
        name="toy",
        materials=[MaterialSpec("m", "m", initial_state="start")],
        steps=[
            StepSpec("go", (AttributeSpec("a", ValueKind.INTEGER),), ("m",)),
        ],
        transitions=[Transition("go", "start", "end")],
        terminal_states=("end",),
    )
    base.update(overrides)
    return WorkflowSpec(**base)


def test_valid_toy_graph():
    graph = WorkflowGraph(_spec())
    assert graph.states() == ["end", "start"]
    assert graph.initial_states() == ["start"]
    assert graph.is_terminal("end")
    assert not graph.has_cycles()
    assert graph.longest_acyclic_path() == 1


def test_transition_lookup():
    graph = WorkflowGraph(_spec())
    transition = graph.transition_for("start")
    assert transition is not None and transition.step == "go"
    assert graph.transition_for("end") is None
    assert len(graph.transitions_from("start")) == 1


def test_unknown_step_rejected():
    with pytest.raises(InvalidWorkflowError, match="unknown"):
        WorkflowGraph(_spec(transitions=[Transition("ghost", "start", "end")]))


def test_step_referencing_unknown_material_rejected():
    bad_step = StepSpec("go", (), ("phantom",))
    with pytest.raises(InvalidWorkflowError, match="unknown material"):
        WorkflowGraph(_spec(steps=[bad_step]))


def test_no_terminal_states_rejected():
    with pytest.raises(InvalidWorkflowError, match="terminal"):
        WorkflowGraph(_spec(terminal_states=()))


def test_terminal_with_outgoing_rejected():
    spec = _spec(
        transitions=[
            Transition("go", "start", "end"),
            Transition("go", "end", "start"),
        ]
    )
    with pytest.raises(InvalidWorkflowError, match="outgoing"):
        WorkflowGraph(spec)


def test_no_initial_state_rejected():
    spec = _spec(materials=[MaterialSpec("m", "m", initial_state=None)])
    with pytest.raises(InvalidWorkflowError, match="initial"):
        WorkflowGraph(spec)


def test_unreachable_state_rejected():
    spec = _spec(
        transitions=[
            Transition("go", "start", "end"),
            Transition("go", "island_a", "island_b"),
        ],
        terminal_states=("end", "island_b"),
    )
    with pytest.raises(InvalidWorkflowError, match="unreachable"):
        WorkflowGraph(spec)


def test_dead_end_state_rejected():
    """A non-terminal state that cannot reach any terminal."""
    spec = _spec(
        steps=[
            StepSpec("go", (), ("m",)),
            StepSpec("stray", (), ("m",)),
        ],
        transitions=[
            Transition("go", "start", "end"),
            Transition("stray", "start", "limbo"),
            Transition("stray", "limbo", "limbo2"),
            Transition("stray", "limbo2", "limbo"),
        ],
    )
    with pytest.raises(InvalidWorkflowError, match="cannot reach"):
        WorkflowGraph(spec)


def test_failure_edge_creates_cycle():
    spec = _spec(
        transitions=[
            Transition(
                "go", "start", "end", fail_state="start", fail_probability=0.2
            )
        ]
    )
    graph = WorkflowGraph(spec)
    assert graph.has_cycles()
    assert graph.longest_acyclic_path() == 1  # success edges only


def test_to_text_mentions_everything():
    spec = _spec(
        transitions=[
            Transition(
                "go", "start", "end", fail_state="start",
                fail_probability=0.25, test="test:ok",
            )
        ]
    )
    text = WorkflowGraph(spec).to_text()
    assert "start --[go]--> end" in text
    assert "25%" in text and "test:ok" in text
    assert "terminal states: end" in text
