"""Tests for text figures."""

import pytest

from repro.benchmark import TINY, run_comparison
from repro.benchmark.figures import ascii_chart, growth_chart, interval_series_chart


def test_ascii_chart_scales_to_peak():
    text = ascii_chart(
        "t", ["a", "b"], {"s": [10.0, 5.0]}, width=20
    )
    lines = text.splitlines()
    assert lines[0] == "t"
    bar_a = lines[2].split("|")[1].count("#")
    bar_b = lines[3].split("|")[1].count("#")
    assert bar_a == 20 and bar_b == 10


def test_ascii_chart_zero_and_shared_scale():
    text = ascii_chart("t", ["x"], {"zero": [0.0], "one": [4.0]}, width=8)
    zero_line = [l for l in text.splitlines() if l.strip().startswith("x |")][0]
    assert "#" not in zero_line


def test_ascii_chart_rejects_ragged_series():
    with pytest.raises(ValueError, match="values for"):
        ascii_chart("t", ["a", "b"], {"s": [1.0]})


def test_ascii_chart_empty_series():
    assert ascii_chart("only title", [], {}) == "only title"


@pytest.fixture(scope="module")
def comparison(tmp_path_factory):
    config = TINY.with_(db_dir=str(tmp_path_factory.mktemp("fig")))
    return run_comparison(config, servers=("OStore", "Texas", "Texas-mm"))


def test_interval_series_chart(comparison):
    text = interval_series_chart(comparison, "elapsed_sec")
    for label in TINY.interval_labels:
        assert label in text
    for server in ("OStore", "Texas", "Texas-mm"):
        assert server in text


def test_growth_chart_excludes_memory_versions(comparison):
    text = growth_chart(comparison)
    assert "OStore" in text and "Texas" in text
    assert "Texas-mm" not in text  # no database file, no growth series
    assert "KiB" in text
