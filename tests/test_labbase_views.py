"""Unit tests for MaterialView."""

import pytest

from repro.labbase import view
from repro.labbase.views import MaterialView


@pytest.fixture
def populated(mm_db, clock):
    db = mm_db
    db.define_material_class("clone")
    db.define_step_class("s", ["quality", "sequence"], ["clone"])
    oid = db.create_material("clone", "c-1", clock.tick(), state="arrived")
    db.record_step("s", clock.tick(), [oid], {"quality": 0.9})
    return db, oid


def test_view_lookup_by_class_and_key(populated, clock):
    db, oid = populated
    material_view = view(db, "clone", "c-1")
    assert material_view.oid == oid


def test_mapping_protocol(populated):
    db, oid = populated
    material_view = MaterialView(db, oid)
    assert material_view["quality"] == 0.9
    assert "quality" in material_view
    assert "sequence" not in material_view
    assert len(material_view) == 1
    assert list(material_view) == ["quality"]
    with pytest.raises(KeyError):
        material_view["sequence"]
    assert material_view.get("sequence") is None  # Mapping mixin


def test_identity_properties(populated):
    db, oid = populated
    material_view = MaterialView(db, oid)
    assert material_view.class_name == "clone"
    assert material_view.key == "c-1"
    assert material_view.state == "arrived"


def test_view_is_live_not_snapshot(populated, clock):
    db, oid = populated
    material_view = MaterialView(db, oid)
    assert len(material_view) == 1
    db.record_step("s", clock.tick(), [oid], {"sequence": "ACGT"})
    assert material_view["sequence"] == "ACGT"
    assert len(material_view) == 2


def test_history_and_as_dict(populated, clock):
    db, oid = populated
    material_view = MaterialView(db, oid)
    db.record_step("s", clock.tick(), [oid], {"quality": 0.95})
    assert material_view.as_dict() == {"quality": 0.95}
    assert len(material_view.history()) == 2


def test_repr_is_informative(populated):
    db, oid = populated
    text = repr(MaterialView(db, oid))
    assert "clone" in text and "c-1" in text and "arrived" in text
