"""Tests for per-segment storage reports."""

from repro.benchmark import TINY, LabFlowWorkload
from repro.labbase import LabBase, SEG_HISTORY
from repro.storage import ObjectStoreSM, TexasSM
from repro.storage.report import segment_report, segment_stats


def test_segment_stats_counts_pages_and_records():
    sm = ObjectStoreSM()
    sm.create_segment("hot")
    sm.create_segment("cold")
    for i in range(20):
        sm.allocate_write({"i": i}, segment="hot")
    sm.allocate_write({"blob": "z" * 9000}, segment="cold")
    by_name = {s.name: s for s in segment_stats(sm)}
    assert by_name["hot"].records == 20
    assert by_name["cold"].pages >= 3  # chunked large object
    assert 0.0 <= by_name["hot"].fill_factor <= 1.0
    sm.close()


def test_labbase_layout_puts_history_in_the_big_segment():
    """The paper's hot/cold claim, checked on a real workload database."""
    sm = ObjectStoreSM(buffer_pages=512)
    db = LabBase(sm)
    LabFlowWorkload(db, TINY).run_all()
    stats = segment_stats(sm)
    assert stats[0].name == SEG_HISTORY, [s.name for s in stats]
    # Compare used (record) bytes, not allocated pages: the schema-aware
    # codec packs the TINY database tightly enough that page-granular
    # allocation can tie, while the history *records* still dominate.
    others = sum(s.used_bytes for s in stats[1:])
    assert stats[0].used_bytes > others, (
        "history segment should dominate the database"
    )
    sm.close()


def test_texas_has_one_segment_for_everything():
    sm = TexasSM()
    db = LabBase(sm)
    LabFlowWorkload(db, TINY.with_(clones_per_interval=2)).run_all()
    stats = segment_stats(sm)
    non_empty = [s for s in stats if s.pages > 0]
    assert len(non_empty) == 1
    assert non_empty[0].name == "default"
    sm.close()


def test_report_renders():
    sm = ObjectStoreSM()
    sm.create_segment("hot")
    sm.allocate_write("x", segment="hot")
    text = segment_report(sm)
    assert "segment" in text and "hot" in text and "fill" in text
    sm.close()
