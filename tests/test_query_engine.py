"""Unit tests for SLD resolution, negation, recursion and errors."""

import pytest

from repro.errors import EvaluationError
from repro.query import Program


def _program(text=""):
    return Program(text=text)


def test_facts_enumerate_in_order():
    program = _program("color(red). color(green). color(blue).")
    assert [s["X"] for s in program.solve("color(X).")] == ["red", "green", "blue"]


def test_conjunction_joins():
    program = _program("""
        parent(tom, bob). parent(tom, liz). parent(bob, ann).
        grandparent(G, C) <- parent(G, P), parent(P, C).
    """)
    assert program.solutions("grandparent(tom, C).") == [{"C": "ann"}]


def test_recursion_transitive_closure():
    program = _program("""
        edge(a, b). edge(b, c). edge(c, d).
        path(X, Y) <- edge(X, Y).
        path(X, Y) <- edge(X, Z), path(Z, Y).
    """)
    reachable = sorted(s["Y"] for s in program.solve("path(a, Y)."))
    assert reachable == ["b", "c", "d"]


def test_backtracking_through_failures():
    program = _program("""
        num(1). num(2). num(3). num(4).
        big(X) <- num(X), X > 2.
    """)
    assert [s["X"] for s in program.solve("big(X).")] == [3, 4]


def test_negation_as_failure():
    program = _program("""
        bird(tweety). bird(pingu).
        flies(tweety).
        grounded(X) <- bird(X), \\+ flies(X).
    """)
    assert program.solutions("grounded(X).") == [{"X": "pingu"}]


def test_negation_with_bound_goal():
    program = _program("p(a).")
    assert program.ask("\\+ p(b).")
    assert not program.ask("\\+ p(a).")


def test_unknown_predicate_is_an_error():
    program = _program("p(a).")
    with pytest.raises(EvaluationError, match="unknown predicate"):
        program.solutions("qqq(X).")


def test_arity_matters_for_predicate_identity():
    program = _program("p(a). p(a, b).")
    assert program.solutions("p(X).") == [{"X": "a"}]
    with pytest.raises(EvaluationError):
        program.solutions("p(X, Y, Z).")


def test_depth_bound_stops_runaway_recursion():
    program = Program(text="loop(X) <- loop(X).", max_depth=100)
    with pytest.raises(EvaluationError, match="depth"):
        program.solutions("loop(1).")


def test_unbound_goal_is_an_error():
    program = _program("p(a).")
    with pytest.raises(EvaluationError, match="unbound"):
        program.solutions("call(G).")


def test_zero_arity_atom_goal():
    program = _program("ready. go <- ready.")
    assert program.ask("go.")


def test_rule_variables_do_not_leak_between_solutions():
    program = _program("""
        pair(1, one). pair(2, two).
        both(A, B) <- pair(A, _), pair(_, B).
    """)
    solutions = program.solutions("both(A, B).")
    assert len(solutions) == 4  # full cross product


def test_solutions_stream_lazily():
    program = _program("n(1). n(2). n(3).")
    stream = program.solve("n(X).")
    assert next(stream)["X"] == 1  # without exhausting


def test_first_and_ask():
    program = _program("n(1). n(2).")
    assert program.first("n(X).") == {"X": 1}
    assert program.first("n(9).") is None
    assert program.ask("n(2).")
    assert not program.ask("n(9).")


def test_cannot_redefine_builtin():
    with pytest.raises(EvaluationError, match="redefine"):
        _program("member(X, Y) <- true.")


def test_embedded_query_returned_not_run():
    program = Program()
    queries = program.consult("p(a). ?- p(X).")
    assert len(queries) == 1
    assert program.solutions(queries[0]) == [{"X": "a"}]
