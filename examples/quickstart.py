#!/usr/bin/env python3
"""Quickstart: LabBase in five minutes.

Creates a LabBase over an ObjectStore-style storage manager, defines a
tiny schema, tracks a material through two steps, and shows the
benchmark's signature behaviours: most-recent queries by valid time,
the event history, and a schema change that costs nothing.

Run:  python examples/quickstart.py
"""

from repro import LabBase, LabClock, ObjectStoreSM, view


def main() -> None:
    # An in-memory page store; pass path="lab.db" for a persistent one.
    db = LabBase(ObjectStoreSM())
    clock = LabClock()

    # -- schema: one material class, one step class --------------------
    db.define_material_class("clone", description="DNA fragment to map")
    db.define_step_class(
        "determine_sequence",
        ["sequence", "quality"],
        involves_classes=["clone"],
    )

    # -- track a material through the workflow -------------------------
    clone = db.create_material(
        "clone", "clone-000001", clock.tick(), state="waiting_for_sequencing"
    )
    db.record_step(
        "determine_sequence", clock.tick(), [clone],
        {"sequence": "ACGTACGTAA", "quality": 0.62},
    )
    # A better read arrives...
    db.record_step(
        "determine_sequence", clock.tick(), [clone],
        {"sequence": "ACGTACGTAC", "quality": 0.94},
    )
    # ...and then an *older* result is entered late.  Valid time rules:
    # it lands in the history but does not become "current".
    db.record_step(
        "determine_sequence", clock.backdated(5), [clone], {"quality": 0.11}
    )

    print("current quality :", db.most_recent(clone, "quality"))
    print("current sequence:", db.most_recent(clone, "sequence"))
    print("history length  :", db.history_length(clone))
    for step_oid, step in db.material_history(clone):
        print(f"  step {step_oid}  t={step['valid_time']}  {dict(step['results'])}")

    # -- the mapping view ------------------------------------------------
    material = view(db, "clone", "clone-000001")
    print("view:", dict(material))

    # -- workflow states ---------------------------------------------------
    db.set_state(clone, "waiting_for_incorporation", clock.tick())
    print("in waiting_for_incorporation:", db.in_state("waiting_for_incorporation"))

    # -- schema evolution: free, and old data untouched -------------------
    new_version = db.define_step_class(
        "determine_sequence",
        ["sequence", "quality", "basecaller_version"],
        involves_classes=["clone"],
    )
    db.record_step(
        "determine_sequence", clock.tick(), [clone],
        {"basecaller_version": "phred-2.0", "quality": 0.97},
    )
    print(f"schema evolved to version {new_version.version_id}; "
          f"quality now {db.most_recent(clone, 'quality')}, "
          f"basecaller {db.most_recent(clone, 'basecaller_version')}")


if __name__ == "__main__":
    main()
