#!/usr/bin/env python3
"""Schema evolution mid-production (the paper's Section 5.1 / 8.1).

The lab re-engineers its process while the production stream runs: the
base-caller is upgraded, ``determine_sequence`` gains an attribute, and
old lab software keeps writing the old format.  LabBase absorbs all of
it with zero data reorganization — each stored step stays bound to the
class version (identified by its attribute set) that created it.

Run:  python examples/schema_evolution.py
"""

import time

from repro import BenchmarkConfig, LabBase, LabFlowWorkload, ObjectStoreSM
from repro.workflow.genome import EVOLVED_DETERMINE_SEQUENCE_ATTRIBUTES


def main() -> None:
    db = LabBase(ObjectStoreSM())
    config = BenchmarkConfig(
        clones_per_interval=8, intervals=(0.5, 1.0), queries_per_intake=1
    )
    workload = LabFlowWorkload(db, config)
    workload.setup_schema()

    print("interval 1: running under the original schema...")
    workload.run_interval("0.5X")
    old_version = db.catalog.step_class("determine_sequence").current
    print(f"  determine_sequence is version {old_version.version_id} "
          f"with attributes {sorted(old_version.attributes)}")

    objects_before = db.storage.stats.objects_written
    started = time.perf_counter()
    new_version = db.define_step_class(
        "determine_sequence",
        EVOLVED_DETERMINE_SEQUENCE_ATTRIBUTES,
        involves_classes=["tclone"],
        description="basecaller upgrade adds version stamp",
    )
    elapsed_ms = (time.perf_counter() - started) * 1000
    objects_touched = db.storage.stats.objects_written - objects_before
    print(f"\nschema change: version {old_version.version_id} -> "
          f"{new_version.version_id} in {elapsed_ms:.2f} ms, "
          f"{objects_touched} object writes (catalog only — no data touched)")

    print("\ninterval 2: stream continues under the new schema...")
    workload.run_interval("1.0X")

    # Old software still submits old-format steps:
    tclone_key, tclone_oid = workload.registry.by_class["tclone"][0]
    db.record_step(
        "determine_sequence", 10_000_000, [tclone_oid],
        {"quality": 0.5}, version_id=old_version.version_id,
    )
    print(f"  old-format step accepted for {tclone_key} "
          f"(version {old_version.version_id})")

    counts = db.catalog.version_step_counts
    print("\nsteps per determine_sequence version:")
    for version in db.catalog.step_class("determine_sequence").versions:
        print(f"  v{version.version_id} {sorted(version.attributes)}: "
              f"{counts.get(version.version_id, 0)} steps")

    # Queries see one seamless view across versions:
    seq_versions = {
        v.version_id for v in db.catalog.step_class("determine_sequence").versions
    }
    history = db.material_history(tclone_oid)
    versions_seen = {step["class_version"] for _oid, step in history
                     if step["class_version"] in seq_versions}
    print(f"\n{tclone_key}: {len(history)} steps; determine_sequence data "
          f"spans versions {sorted(versions_seen)}; current quality = "
          f"{db.most_recent(tclone_oid, 'quality')}")

    workload.check_integrity()
    print("integrity check passed")


if __name__ == "__main__":
    main()
