#!/usr/bin/env python3
"""The deductive query language over a populated lab database.

Loads a small genome-lab run, then asks the Section 8 queries in the
paper's own Datalog/Prolog style — including the Transaction-Logic
transition rule quoted in the paper, run verbatim.

Run:  python examples/deductive_queries.py
"""

from repro import (
    LabBase,
    OStoreMM,
    Program,
    WorkflowEngine,
    build_genome_workflow,
)
from repro.labbase import LabClock
from repro.util.rng import DeterministicRng


def main() -> None:
    db = LabBase(OStoreMM())
    engine = WorkflowEngine(db, build_genome_workflow(), DeterministicRng(7))
    engine.install_schema()
    for _ in range(10):
        engine.create_material("clone")
    engine.pump(65)  # leave work in flight so states are populated

    program = Program(db=db, clock=LabClock(start=10_000))

    print("-- all tclones waiting for sequencing (state/2)")
    for row in program.solve("state(M, waiting_for_sequencing), material(C, K, M)."):
        print(f"   {row['K']} (oid {row['M']})")

    print("\n-- counting via setof + length (the paper's idiom)")
    row = program.first(
        "setof(M, state(M, waiting_for_sequencing), Ms), length(Ms, N)."
    )
    print(f"   {row['N'] if row else 0} materials")

    print("\n-- class counts with EER is-a rollup (class_count/2)")
    for row in program.solve("class_count(C, N)."):
        print(f"   {row['C']:8s} {row['N']}")

    print("\n-- per-material view: most-recent values (value_of/3)")
    target = program.first("state(M, waiting_for_sequencing).")
    if target:
        oid = target["M"]
        for row in program.solve(f"value_of({oid}, A, V)."):
            value = row["V"]
            text = repr(value)
            if isinstance(value, str) and len(value) > 40:
                text = f"<{len(value)}-char sequence>"
            print(f"   {row['A']:14s} = {text}")

    print("\n-- the paper's transition rule, verbatim")
    program.consult("""
        test:sequencing_ok(M) <- value_of(M, quality, Q), Q >= 0.5.

        promote(M) <- state(M, waiting_for_sequencing),
                      test:sequencing_ok(M),
                      retract(state(M, waiting_for_sequencing)),
                      assert(state(M, waiting_for_incorporation)).
    """)
    # the sequencing results arrive (an update, in DQL as well) ...
    for row in program.solutions("state(M, waiting_for_sequencing)."):
        program.ask(
            f"record_step(determine_sequence, [{row['M']}], "
            f"[sequence = \"ACGTACGT\", quality = 0.9])."
        )
    # ... and the transition rule fires on materials that pass the test
    promoted = program.solutions("promote(M).")
    print(f"   promoted {len(promoted)} materials to waiting_for_incorporation")
    print("   now waiting_for_incorporation:",
          [r["M"] for r in program.solve("state(M, waiting_for_incorporation).")])

    print("\n-- the standard view library (Section 7's workflow-independent views)")
    from repro.query import load_standard_library

    load_standard_library(program)
    resequenced = {
        r["M"]
        for r in program.solve(
            "material(tclone, K, M), reworked(M, determine_sequence)."
        )
    }
    print(f"   tclones sequenced more than once: {len(resequenced)}")
    lineage = program.solutions("derived_from(P, C), material(tclone, K, C).")
    print(f"   lineage pairs (clone -> tclone): {len(lineage)}")
    census = program.solutions("state_population(S, N), N > 0.")
    print("   populated states:",
          {row["S"]: row["N"] for row in census})


if __name__ == "__main__":
    main()
