#!/usr/bin/env python3
"""Run the genome-mapping lab (the paper's Appendix B workflow).

Feeds clones into the full transposon-sequencing workflow, runs it to
quiescence, and reports what a lab manager would ask for: the workflow
graph, state census over time, per-step counts, fan-out statistics, and
a cohort report for the finished clones.

Run:  python examples/genome_lab.py [n_clones]
"""

import sys

from repro import LabBase, ObjectStoreSM, WorkflowEngine, build_genome_workflow
from repro.util.fmt import format_table
from repro.util.rng import DeterministicRng


def main(n_clones: int = 12) -> None:
    graph = build_genome_workflow()
    print(graph.to_text())
    print()

    db = LabBase(ObjectStoreSM())
    engine = WorkflowEngine(db, graph, DeterministicRng(2024))
    engine.install_schema()

    print(f"receiving {n_clones} clones...")
    clones = [engine.create_material("clone") for _ in range(n_clones)]

    # run the lab in bursts, watching work-in-progress move through states
    burst = 0
    while True:
        executed = engine.pump(40)
        burst += 1
        census = {s: n for s, n in db.sets.state_census().items() if n}
        print(f"  burst {burst:>2}: {executed:>3} steps  census={census}")
        if executed == 0:
            break

    print()
    rows = sorted(engine.counters.per_step.items())
    print(format_table(["step class", "executions"], rows, align_right=(1,)))
    print()
    print(f"tclones per clone: {db.count_materials('tclone') / n_clones:.2f} "
          f"(design mean 4.0)")
    print(f"sequencing re-runs: {engine.counters.failures - (db.count_steps('associate_tclone') - n_clones)}")
    print()

    # Q6: report over the finished cohort
    done = db.in_state("clone_done")[:8]
    report = db.report(done, ["insert_length", "coverage", "map_position"])
    print(format_table(
        ["key", "state", "insert_length", "coverage", "map_position"],
        [[r["key"], r["state"], r["insert_length"], r["coverage"], r["map_position"]]
         for r in report],
        title="Finished clones (Q6 report)",
        align_right=(2, 3, 4),
    ))

    # Q4: hit lists from the BLAST searches
    first = done[0]
    hits = db.most_recent(first, "hits")
    print(f"\n{db.material(first)['key']} BLAST hits: {len(hits)}"
          + (f", best {hits[0]['accession']} score={hits[0]['score']}" if hits else ""))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
