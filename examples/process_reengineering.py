#!/usr/bin/env python3
"""Process re-engineering: define a workflow in text, run it, analyze it.

Demonstrates the two halves of the paper's flexibility story together:

1. the workflow is *defined as text* (the DSL) — the lab document, not
   code — and loaded at run time;
2. after production runs, the **chronicle queries** (throughput,
   rework, cycle times, funnel) tell the re-engineer what to change;
3. the change is applied as a new workflow version mid-stream, with
   zero data migration.

Run:  python examples/process_reengineering.py
"""

from repro import LabBase, ObjectStoreSM, WorkflowEngine
from repro.labbase import Chronicle
from repro.util.fmt import format_table
from repro.util.rng import DeterministicRng
from repro.workflow import load_workflow

PIPELINE_V1 = """
workflow qc-pipeline

material sample key smp initial received -- incoming lab sample
material slide key sld initial unscanned

step log_sample involves sample
    attr source : text
    attr received_date : date

step prepare_slide involves sample, slide creates slide
    attr stain : text

step scan_slide involves slide
    attr image_size : integer

step review involves sample -- manual QC review; often fails
    attr verdict : text
    attr reviewer : identifier

step archive involves sample
    attr location : identifier

transition received -> waiting_for_slide via log_sample
transition waiting_for_slide -> waiting_for_review via prepare_slide
transition unscanned -> scanned via scan_slide
transition waiting_for_review -> approved via review fail 0.35 -> waiting_for_slide test test:qc_pass
transition approved -> archived via archive

terminal archived, scanned
"""


def main() -> None:
    graph = load_workflow(PIPELINE_V1)
    print(graph.to_text())

    db = LabBase(ObjectStoreSM())
    engine = WorkflowEngine(db, graph, DeterministicRng(404))
    engine.install_schema()

    print("\nprocessing 30 samples through pipeline v1...")
    for _ in range(30):
        engine.create_material("sample")
    engine.pump(1_000_000)

    chronicle = Chronicle(db)

    rows = [
        [p.class_name, p.executions, p.materials_touched]
        for p in chronicle.step_profiles()
    ]
    print()
    print(format_table(["step", "runs", "materials"], rows, align_right=(1, 2)))

    rework = chronicle.rework("review")
    cycle = chronicle.cycle_time_statistics(db.in_state("archived"))
    print(f"\nreview rework rate : {rework.rework_rate:.0%} "
          f"(max {rework.max_runs_on_one_material} reviews on one sample)")
    print(f"cycle time         : mean {cycle['mean']:.0f}, max {cycle['max']:.0f} ticks")

    funnel = chronicle.funnel("sample", ["log_sample", "prepare_slide", "review", "archive"])
    print(format_table(["stage", "samples reached"], funnel, align_right=(1,),
                       title="\nFunnel"))

    # -- the re-engineering decision -------------------------------------
    print("\n35% QC failure means every failed sample re-does an entire "
          "slide.\nDecision: add a pre-review quality check to the scan "
          "step.\nApplying the schema change mid-production:")
    new_version = db.define_step_class(
        "scan_slide",
        ["image_size", "focus_score"],  # new attribute set -> new version
        involves_classes=["slide"],
    )
    print(f"  scan_slide evolved to version {new_version.version_id} "
          f"(added focus_score) — no stored data touched")

    # production continues immediately under the new schema
    for _ in range(5):
        engine.create_material("sample")
    engine.pump(1_000_000)
    versions = db.catalog.step_class("scan_slide").versions
    counts = db.catalog.version_step_counts
    print("\nscan_slide steps per version:")
    for version in versions:
        print(f"  v{version.version_id} {sorted(version.attributes)}: "
              f"{counts.get(version.version_id, 0)}")


if __name__ == "__main__":
    main()
