#!/usr/bin/env python3
"""A small-scale run of the paper's Section 10 comparison.

Runs the identical seeded LabFlow-1 stream against all five server
versions and prints the paper's table: elapsed, user/sys CPU, simulated
major faults, and database size per interval — followed by the storage
counters that explain the differences (clustering, swizzling,
power-of-two fragmentation).

Run:  python examples/storage_comparison.py [clones_per_interval]
(the full-scale reproduction lives in benchmarks/bench_e1_update_stream.py)
"""

import sys
import tempfile

from repro import BenchmarkConfig, render_comparison, run_comparison
from repro.benchmark import render_stats, render_workload


def main(clones_per_interval: int = 15) -> None:
    with tempfile.TemporaryDirectory() as db_dir:
        config = BenchmarkConfig(
            clones_per_interval=clones_per_interval,
            db_dir=db_dir,
            buffer_pages=128,
        )
        print(f"running the LabFlow-1 stream against 5 server versions "
              f"({config.total_clones()} clones, seed {config.seed})...\n")
        comparison = run_comparison(config)

        print(render_comparison(comparison))
        print()
        print(render_stats(comparison))
        print()
        print(render_workload(comparison.runs[0]))

        ostore = comparison.run_for("OStore").intervals[-1].usage.size_bytes
        texas = comparison.run_for("Texas").intervals[-1].usage.size_bytes
        print(f"\nTexas / OStore database size: {texas / ostore:.2f}x "
              f"(paper's 0.5X row: ~1.48x)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 15)
