#!/usr/bin/env python3
"""Multi-user access: the concurrency gap between the storage managers.

The paper's usability comparison: ObjectStore mediates all access
through a page server with lock-based concurrency control; Texas
programs access their database file directly, so only one client may
attach.  This example runs a three-user lab (data entry, a sequencing
daemon, a report writer) over ObjectStore — with a real lock conflict
and the release-and-retry discipline — and then shows Texas refusing
the second user.

Run:  python examples/multi_user_lab.py
"""

from repro import LabBase, LabClock, ObjectStoreSM, TexasSM
from repro.errors import ConcurrencyUnsupportedError, LockError
from repro.labbase import SessionManager


def setup(db: LabBase, clock: LabClock) -> int:
    db.define_material_class("clone")
    db.define_step_class("determine_sequence", ["sequence", "quality"], ["clone"])
    return db.create_material("clone", "clone-000001", clock.tick(),
                              state="waiting_for_sequencing")


def main() -> None:
    print("== ObjectStore: three concurrent users ==")
    db = LabBase(ObjectStoreSM())
    clock = LabClock()
    clone = setup(db, clock)

    manager = SessionManager(db)
    entry = manager.open_session("data-entry")
    daemon = manager.open_session("sequencing-daemon")
    reports = manager.open_session("report-writer")
    print(f"sessions open: {manager.open_sessions()}")

    # the daemon records a sequencing result under exclusive locks
    daemon.record_step("determine_sequence", clock.tick(), [clone],
                       {"sequence": "ACGTACGT", "quality": 0.91})
    print("daemon: recorded sequencing result (exclusive lock held)")

    # the report writer tries to read while the daemon still holds locks
    try:
        reports.most_recent(clone, "quality")
    except LockError as exc:
        print(f"report-writer: blocked -> {exc}")

    # 1996 discipline: the writer commits and releases, the reader retries
    daemon.release_locks()
    quality = reports.most_recent(clone, "quality")
    print(f"report-writer: after release, quality = {quality}")
    reports.release_locks()

    # two readers share locks happily
    value_a = entry.most_recent(clone, "quality")
    value_b = reports.most_recent(clone, "quality")
    print(f"shared readers agree: {value_a} == {value_b}")
    for session in (entry, daemon, reports):
        session.close()

    print("\n== Texas: single-client only ==")
    texas_db = LabBase(TexasSM())
    texas_clock = LabClock()
    setup(texas_db, texas_clock)
    texas_manager = SessionManager(texas_db)
    texas_manager.open_session("the-one-user")
    print("first user attached fine")
    try:
        texas_manager.open_session("a-second-user")
    except ConcurrencyUnsupportedError as exc:
        print(f"second user refused -> {exc}")


if __name__ == "__main__":
    main()
